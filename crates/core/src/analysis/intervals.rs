//! Biased-interval extraction and correlation clustering (Figure 9).
//!
//! The paper plots, for the 139 vortex branches that flip between biased
//! and unbiased characterization, the periods during which each branch is
//! considered biased — and observes that branches change behavior in
//! groups. We reconstruct those intervals from the controller's transition
//! log and cluster branches by their transition times.

use crate::controller::{TransitionEvent, TransitionKind};
use rsc_trace::BranchId;
use std::collections::BTreeMap;

/// The periods during which one branch was classified biased.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BiasedIntervals {
    /// The branch.
    pub branch: BranchId,
    /// Half-open `[enter, exit)` spans in global event indexes. A branch
    /// still biased at the end of the run closes its last span at
    /// `total_events`.
    pub spans: Vec<(u64, u64)>,
    /// Evictions observed (closed spans).
    pub exits: u32,
    /// `true` if the branch was classified *unbiased* at least once.
    pub was_unbiased: bool,
}

impl BiasedIntervals {
    /// Total events spent classified biased.
    pub fn covered(&self) -> u64 {
        self.spans.iter().map(|(a, b)| b - a).sum()
    }

    /// Returns `true` if the branch flipped between characterizations —
    /// it was classified biased *and* either got evicted or also spent
    /// time classified unbiased (the paper's Figure 9 population).
    pub fn flips(&self, _total_events: u64) -> bool {
        !self.spans.is_empty() && (self.exits > 0 || self.was_unbiased)
    }
}

/// Extracts biased intervals for every branch from a transition log.
pub fn biased_intervals(
    transitions: &[TransitionEvent],
    total_events: u64,
) -> Vec<BiasedIntervals> {
    let mut by_branch: BTreeMap<BranchId, Vec<(u64, u64)>> = BTreeMap::new();
    let mut open: BTreeMap<BranchId, u64> = BTreeMap::new();
    let mut exits: BTreeMap<BranchId, u32> = BTreeMap::new();
    let mut unbiased: BTreeMap<BranchId, bool> = BTreeMap::new();
    for t in transitions {
        match t.kind {
            TransitionKind::EnterBiased => {
                open.entry(t.branch).or_insert(t.event_index);
            }
            TransitionKind::ExitBiased => {
                if let Some(start) = open.remove(&t.branch) {
                    by_branch
                        .entry(t.branch)
                        .or_default()
                        .push((start, t.event_index));
                    *exits.entry(t.branch).or_insert(0) += 1;
                }
            }
            TransitionKind::EnterUnbiased => {
                unbiased.insert(t.branch, true);
            }
            _ => {}
        }
    }
    for (branch, start) in open {
        by_branch
            .entry(branch)
            .or_default()
            .push((start, total_events));
    }
    by_branch
        .into_iter()
        .map(|(branch, spans)| BiasedIntervals {
            branch,
            spans,
            exits: exits.get(&branch).copied().unwrap_or(0),
            was_unbiased: unbiased.get(&branch).copied().unwrap_or(false),
        })
        .collect()
}

/// Returns only the branches that flip between biased and unbiased
/// (the Figure 9 population).
pub fn flipping_branches(
    intervals: &[BiasedIntervals],
    total_events: u64,
) -> Vec<&BiasedIntervals> {
    intervals
        .iter()
        .filter(|iv| iv.flips(total_events))
        .collect()
}

/// Clusters flipping branches by their transition-time signatures: two
/// branches belong to the same cluster when all their span boundaries fall
/// within `tolerance` events of each other (and they have the same number
/// of spans).
///
/// Returns clusters sorted by decreasing size; each cluster lists branch
/// ids. A cluster of size > 1 is a correlated group in the Figure 9 sense.
pub fn correlated_clusters(intervals: &[&BiasedIntervals], tolerance: u64) -> Vec<Vec<BranchId>> {
    type Cluster = (Vec<(u64, u64)>, Vec<BranchId>);
    let mut clusters: Vec<Cluster> = Vec::new();
    for iv in intervals {
        let found = clusters.iter_mut().find(|(sig, _)| {
            sig.len() == iv.spans.len()
                && sig.iter().zip(&iv.spans).all(|(&(a1, b1), &(a2, b2))| {
                    a1.abs_diff(a2) <= tolerance && b1.abs_diff(b2) <= tolerance
                })
        });
        match found {
            Some((_, members)) => members.push(iv.branch),
            None => clusters.push((iv.spans.clone(), vec![iv.branch])),
        }
    }
    let mut result: Vec<Vec<BranchId>> = clusters.into_iter().map(|(_, m)| m).collect();
    result.sort_by_key(|m| std::cmp::Reverse(m.len()));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_trace::Direction;

    fn ev(branch: u32, kind: TransitionKind, event_index: u64) -> TransitionEvent {
        TransitionEvent {
            branch: BranchId::new(branch),
            kind,
            event_index,
            instr: event_index * 6,
            direction: Some(Direction::Taken),
        }
    }

    #[test]
    fn extracts_closed_and_open_spans() {
        let log = vec![
            ev(0, TransitionKind::EnterBiased, 10),
            ev(0, TransitionKind::ExitBiased, 50),
            ev(1, TransitionKind::EnterBiased, 20),
        ];
        let ivs = biased_intervals(&log, 100);
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].spans, vec![(10, 50)]);
        assert_eq!(ivs[0].exits, 1);
        assert_eq!(ivs[1].spans, vec![(20, 100)], "open span closes at end");
        assert_eq!(ivs[1].exits, 0);
    }

    #[test]
    fn reentry_creates_multiple_spans() {
        let log = vec![
            ev(0, TransitionKind::EnterBiased, 10),
            ev(0, TransitionKind::ExitBiased, 20),
            ev(0, TransitionKind::EnterBiased, 60),
            ev(0, TransitionKind::ExitBiased, 80),
        ];
        let ivs = biased_intervals(&log, 100);
        assert_eq!(ivs[0].spans, vec![(10, 20), (60, 80)]);
        assert_eq!(ivs[0].covered(), 30);
    }

    fn iv(branch: u32, spans: Vec<(u64, u64)>, exits: u32, was_unbiased: bool) -> BiasedIntervals {
        BiasedIntervals {
            branch: BranchId::new(branch),
            spans,
            exits,
            was_unbiased,
        }
    }

    #[test]
    fn flips_requires_both_characterizations() {
        // Biased the whole run, never evicted, never unbiased: not a
        // flipper.
        assert!(!iv(0, vec![(0, 100)], 0, false).flips(100));
        // Evicted once: flips.
        assert!(iv(1, vec![(0, 50)], 1, false).flips(100));
        // Classified unbiased first, biased later: flips.
        assert!(iv(2, vec![(60, 100)], 0, true).flips(100));
        // Never biased at all: not a flipper.
        assert!(!iv(3, vec![], 0, true).flips(100));
    }

    #[test]
    fn clustering_groups_similar_signatures() {
        let a = iv(0, vec![(0, 50)], 1, false);
        let b = iv(1, vec![(2, 52)], 1, false);
        let c = iv(2, vec![(0, 90)], 1, false);
        let refs: Vec<&BiasedIntervals> = vec![&a, &b, &c];
        let clusters = correlated_clusters(&refs, 5);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].len(), 2, "a and b cluster together");
        assert_eq!(clusters[1], vec![BranchId::new(2)]);
    }

    #[test]
    fn clustering_separates_different_span_counts() {
        let a = iv(0, vec![(0, 50)], 1, false);
        let b = iv(1, vec![(0, 50), (60, 70)], 2, false);
        let refs: Vec<&BiasedIntervals> = vec![&a, &b];
        assert_eq!(correlated_clusters(&refs, 5).len(), 2);
    }
}
