//! Post-hoc analyses of controller runs: per-branch block biases
//! (Figure 3), transition-local misprediction behavior (Figure 6),
//! biased-interval correlation (Figure 9), FSM-transition coverage
//! signatures (the fuzzer's guidance signal), and the Markov-chain
//! analytic misspeculation model.

pub mod blocks;
pub mod coverage;
pub mod intervals;
pub mod markov;
pub mod transition;
