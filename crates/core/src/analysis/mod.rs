//! Post-hoc analyses of controller runs: per-branch block biases
//! (Figure 3), transition-local misprediction behavior (Figure 6), and
//! biased-interval correlation (Figure 9).

pub mod blocks;
pub mod intervals;
pub mod transition;
