//! Behavior around eviction transitions (the paper's Figure 6).
//!
//! When a branch leaves the biased state, what do its next executions look
//! like relative to the direction that used to be speculated? The paper
//! reports two common shapes: softening (same direction, weaker bias) and
//! perfect reversal, with over half of exits showing original-direction
//! bias below 30% in the transition window.

use crate::controller::{ReactiveController, TransitionKind};
use crate::params::{ControllerParams, InvalidParamsError};
use rsc_trace::{BranchRecord, Direction};

/// The outcome window following one eviction.
#[derive(Debug, Clone, PartialEq)]
pub struct EvictionWindow {
    /// The evicted branch.
    pub branch: rsc_trace::BranchId,
    /// The direction that was being speculated.
    pub direction: Direction,
    /// For each of the following executions (up to the window size):
    /// `true` if the outcome *mismatched* the old direction.
    pub mispredictions: Vec<bool>,
}

impl EvictionWindow {
    /// Misprediction rate over the captured window (fraction of outcomes
    /// not in the original bias direction).
    pub fn misprediction_rate(&self) -> f64 {
        if self.mispredictions.is_empty() {
            return 0.0;
        }
        let miss = self.mispredictions.iter().filter(|&&m| m).count();
        miss as f64 / self.mispredictions.len() as f64
    }

    /// Bias toward the original direction over the window.
    pub fn original_direction_bias(&self) -> f64 {
        1.0 - self.misprediction_rate()
    }
}

/// Captures post-eviction windows while running a controller over a trace.
///
/// `window` is the number of post-eviction executions captured per eviction
/// (the paper uses up to 64).
///
/// # Errors
///
/// Returns an error if `params` are inconsistent.
pub fn eviction_windows<I: IntoIterator<Item = BranchRecord>>(
    params: ControllerParams,
    trace: I,
    window: usize,
) -> Result<Vec<EvictionWindow>, InvalidParamsError> {
    let mut ctl = ReactiveController::builder(params).build()?;
    let mut finished: Vec<EvictionWindow> = Vec::new();
    // At most one open window per branch; a re-eviction inside the window
    // closes the old one.
    let mut open: Vec<Option<EvictionWindow>> = Vec::new();

    for r in trace {
        let idx = r.branch.index();
        if idx >= open.len() {
            open.resize(idx + 1, None);
        }
        let evictions_before = ctl.evictions(r.branch);
        let _ = ctl.observe(&r);
        let evicted_now = ctl.evictions(r.branch) > evictions_before;

        if let Some(w) = open[idx].as_mut() {
            // The eviction-triggering execution itself belongs to the
            // window only for *subsequent* executions, so record before
            // checking for a fresh eviction on this record.
            if !evicted_now {
                w.mispredictions.push(!w.direction.matches(r.taken));
                if w.mispredictions.len() >= window {
                    finished.push(open[idx].take().expect("window is open"));
                }
            }
        }
        if evicted_now {
            if let Some(w) = open[idx].take() {
                finished.push(w);
            }
            let dir =
                last_speculated_direction(&ctl, r.branch).unwrap_or(Direction::from_taken(r.taken));
            open[idx] = Some(EvictionWindow {
                branch: r.branch,
                direction: dir,
                mispredictions: Vec::with_capacity(window),
            });
        }
    }
    finished.extend(
        open.into_iter()
            .flatten()
            .filter(|w| !w.mispredictions.is_empty()),
    );
    Ok(finished)
}

/// The direction recorded with the branch's most recent exit-biased
/// transition.
fn last_speculated_direction(
    ctl: &ReactiveController,
    branch: rsc_trace::BranchId,
) -> Option<Direction> {
    ctl.transitions()
        .iter()
        .rev()
        .find(|t| t.branch == branch && t.kind == TransitionKind::ExitBiased)
        .and_then(|t| t.direction)
}

/// Mean misprediction rate by offset after eviction (the Figure 6 series):
/// element `i` is the average, over all captured windows long enough, of
/// the misprediction indicator at offset `i`.
pub fn mean_misprediction_by_offset(windows: &[EvictionWindow], len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let mut n = 0u64;
            let mut miss = 0u64;
            for w in windows {
                if let Some(&m) = w.mispredictions.get(i) {
                    n += 1;
                    miss += u64::from(m);
                }
            }
            if n == 0 {
                0.0
            } else {
                miss as f64 / n as f64
            }
        })
        .collect()
}

/// Distribution summary of post-eviction behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExitBehaviorSummary {
    /// Number of captured eviction windows.
    pub exits: usize,
    /// Fraction of exits whose original-direction bias fell below 30%
    /// (the paper reports over 50%).
    pub strongly_degraded_frac: f64,
    /// Fraction of exits that became (almost) perfectly biased the other
    /// way — original-direction bias below 2% (the paper reports ~20%).
    pub reversed_frac: f64,
    /// Fraction of exits that merely softened: original-direction bias
    /// still at least 50%.
    pub softened_frac: f64,
}

/// Summarizes captured windows into the Figure 6 headline fractions.
pub fn summarize_exits(windows: &[EvictionWindow]) -> ExitBehaviorSummary {
    let exits = windows.len();
    if exits == 0 {
        return ExitBehaviorSummary {
            exits: 0,
            strongly_degraded_frac: 0.0,
            reversed_frac: 0.0,
            softened_frac: 0.0,
        };
    }
    let mut degraded = 0usize;
    let mut reversed = 0usize;
    let mut softened = 0usize;
    for w in windows {
        let bias = w.original_direction_bias();
        if bias < 0.30 {
            degraded += 1;
        }
        if bias < 0.02 {
            reversed += 1;
        }
        if bias >= 0.50 {
            softened += 1;
        }
    }
    ExitBehaviorSummary {
        exits,
        strongly_degraded_frac: degraded as f64 / exits as f64,
        reversed_frac: reversed as f64 / exits as f64,
        softened_frac: softened as f64 / exits as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{EvictionMode, MonitorPolicy};
    use rsc_trace::BranchId;

    fn rec(b: u32, taken: bool, instr: u64) -> BranchRecord {
        BranchRecord {
            branch: BranchId::new(b),
            taken,
            instr,
        }
    }

    fn tiny() -> ControllerParams {
        ControllerParams {
            monitor_period: 10,
            monitor_policy: MonitorPolicy::FixedWindow,
            monitor_sample_rate: 1,
            selection_threshold: 0.995,
            eviction: EvictionMode::Counter {
                up: 50,
                down: 1,
                threshold: 100,
            },
            revisit: crate::params::Revisit::After(1_000_000),
            oscillation_limit: Some(50),
            optimization_latency: 0,
        }
    }

    /// A branch that is taken for `head` executions then not-taken.
    fn flip_trace(head: u64, total: u64) -> Vec<BranchRecord> {
        (0..total).map(|i| rec(0, i < head, (i + 1) * 5)).collect()
    }

    #[test]
    fn captures_reversal_window() {
        let windows = eviction_windows(tiny(), flip_trace(50, 200), 16).unwrap();
        assert_eq!(windows.len(), 1);
        let w = &windows[0];
        assert_eq!(w.direction, Direction::Taken);
        assert_eq!(w.mispredictions.len(), 16);
        assert!(w.mispredictions.iter().all(|&m| m), "perfect reversal");
        assert_eq!(w.misprediction_rate(), 1.0);
        assert_eq!(w.original_direction_bias(), 0.0);
    }

    #[test]
    fn no_eviction_no_windows() {
        // Always taken: never evicted.
        let trace: Vec<_> = (0..200).map(|i| rec(0, true, (i + 1) * 5)).collect();
        let windows = eviction_windows(tiny(), trace, 16).unwrap();
        assert!(windows.is_empty());
    }

    #[test]
    fn partial_window_at_end_of_trace_is_kept() {
        let windows = eviction_windows(tiny(), flip_trace(50, 58), 64).unwrap();
        assert_eq!(windows.len(), 1);
        assert!(windows[0].mispredictions.len() < 64);
        assert!(!windows[0].mispredictions.is_empty());
    }

    #[test]
    fn offset_series_averages_windows() {
        let windows = vec![
            EvictionWindow {
                branch: BranchId::new(0),
                direction: Direction::Taken,
                mispredictions: vec![true, false],
            },
            EvictionWindow {
                branch: BranchId::new(1),
                direction: Direction::Taken,
                mispredictions: vec![true, true],
            },
        ];
        let series = mean_misprediction_by_offset(&windows, 3);
        assert_eq!(series, vec![1.0, 0.5, 0.0]);
    }

    #[test]
    fn summary_classifies_shapes() {
        let mk = |rate: f64| EvictionWindow {
            branch: BranchId::new(0),
            direction: Direction::Taken,
            mispredictions: (0..100).map(|i| (i as f64) < rate * 100.0).collect(),
        };
        // Reversed (bias 0), degraded (bias 0.2), softened (bias 0.8).
        let windows = vec![mk(1.0), mk(0.8), mk(0.2)];
        let s = summarize_exits(&windows);
        assert_eq!(s.exits, 3);
        assert!((s.reversed_frac - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.strongly_degraded_frac - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.softened_frac - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = summarize_exits(&[]);
        assert_eq!(s.exits, 0);
        assert_eq!(s.reversed_frac, 0.0);
    }
}
