//! Per-block bias series for individual branches (the paper's Figure 3).
//!
//! Figure 3 plots the bias of five gap branches averaged over blocks of
//! 1,000 dynamic instances, showing branches that look perfectly biased for
//! at least their first 20,000 executions and then change — the population
//! that defeats initial-behavior training.

use rsc_trace::{BranchId, BranchRecord, Population};

/// The per-block bias series of one branch.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockBiasSeries {
    /// The branch.
    pub branch: BranchId,
    /// Fraction of taken outcomes per block of `block_len` executions.
    /// The final partial block is included if it has at least one event.
    pub taken_frac: Vec<f64>,
    /// Block length in executions.
    pub block_len: u64,
}

impl BlockBiasSeries {
    /// Bias toward the branch's *initial* majority direction per block,
    /// which is how Figure 3 is drawn (series start near 1.0 and may fall
    /// to 0.0 on a perfect reversal).
    pub fn initial_direction_bias(&self) -> Vec<f64> {
        let initially_taken = self.taken_frac.first().is_none_or(|&f| f >= 0.5);
        self.taken_frac
            .iter()
            .map(|&f| if initially_taken { f } else { 1.0 - f })
            .collect()
    }

    /// Number of leading blocks with bias of at least `threshold` toward
    /// the initial direction.
    pub fn initially_biased_blocks(&self, threshold: f64) -> usize {
        self.initial_direction_bias()
            .iter()
            .take_while(|&&b| b >= threshold)
            .count()
    }
}

/// Computes block-bias series for the requested branches from a record
/// stream.
pub fn block_bias_series<I: IntoIterator<Item = BranchRecord>>(
    trace: I,
    branches: &[BranchId],
    block_len: u64,
) -> Vec<BlockBiasSeries> {
    assert!(block_len > 0, "block length must be positive");
    let max_idx = branches.iter().map(|b| b.index()).max();
    let Some(max_idx) = max_idx else {
        return Vec::new();
    };
    let mut selected = vec![false; max_idx + 1];
    for b in branches {
        selected[b.index()] = true;
    }
    // (taken-in-block, seen-in-block, finished blocks)
    let mut acc: Vec<(u64, u64, Vec<f64>)> = vec![(0, 0, Vec::new()); max_idx + 1];
    for r in trace {
        let idx = r.branch.index();
        if idx > max_idx || !selected[idx] {
            continue;
        }
        let (taken, seen, blocks) = &mut acc[idx];
        *taken += u64::from(r.taken);
        *seen += 1;
        if *seen == block_len {
            blocks.push(*taken as f64 / *seen as f64);
            *taken = 0;
            *seen = 0;
        }
    }
    branches
        .iter()
        .map(|&b| {
            let (taken, seen, mut blocks) = std::mem::take(&mut acc[b.index()]);
            if seen > 0 {
                blocks.push(taken as f64 / seen as f64);
            }
            BlockBiasSeries {
                branch: b,
                taken_frac: blocks,
                block_len,
            }
        })
        .collect()
}

/// Finds the hottest branches in a population whose behavior changes over
/// time (more than one phase) *and* starts out highly biased — the exact
/// population Figure 3 plots: branches indistinguishable from truly biased
/// ones at first.
pub fn changing_branches(population: &Population, count: usize) -> Vec<BranchId> {
    let mut candidates: Vec<(usize, f64)> = population
        .branches()
        .iter()
        .enumerate()
        .filter(|(_, spec)| {
            let initial_p = spec.behavior.p_taken(0, false);
            // Figure 3 plots one-time behavior changes; periodic bursts are
            // a different (oscillating) population.
            let periodic = matches!(spec.behavior, rsc_trace::Behavior::PeriodicBurst { .. });
            spec.behavior.phase_count() > 1
                && !periodic
                && spec.eval_weight > 0.0
                && !(0.05..0.95).contains(&initial_p)
        })
        .map(|(i, spec)| (i, spec.eval_weight))
        .collect();
    candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("weights are finite"));
    candidates
        .into_iter()
        .take(count)
        .map(|(i, _)| BranchId::new(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_trace::spec2000;

    fn rec(b: u32, taken: bool, instr: u64) -> BranchRecord {
        BranchRecord {
            branch: BranchId::new(b),
            taken,
            instr,
        }
    }

    #[test]
    fn blocks_average_correctly() {
        // 4 executions in blocks of 2: [T, T], [F, T] → 1.0, 0.5.
        let trace = vec![
            rec(0, true, 1),
            rec(0, true, 2),
            rec(0, false, 3),
            rec(0, true, 4),
        ];
        let s = block_bias_series(trace, &[BranchId::new(0)], 2);
        assert_eq!(s[0].taken_frac, vec![1.0, 0.5]);
    }

    #[test]
    fn partial_final_block_is_kept() {
        let trace = vec![rec(0, true, 1), rec(0, true, 2), rec(0, false, 3)];
        let s = block_bias_series(trace, &[BranchId::new(0)], 2);
        assert_eq!(s[0].taken_frac, vec![1.0, 0.0]);
    }

    #[test]
    fn unselected_branches_are_ignored() {
        let trace = vec![rec(0, true, 1), rec(1, false, 2)];
        let s = block_bias_series(trace, &[BranchId::new(1)], 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].taken_frac, vec![0.0]);
    }

    #[test]
    fn initial_direction_bias_handles_not_taken_start() {
        // Branch starts not-taken biased, then flips to taken.
        let mut trace = Vec::new();
        for i in 0..10 {
            trace.push(rec(0, false, i));
        }
        for i in 10..20 {
            trace.push(rec(0, true, i));
        }
        let s = &block_bias_series(trace, &[BranchId::new(0)], 10)[0];
        assert_eq!(s.initial_direction_bias(), vec![1.0, 0.0]);
        assert_eq!(s.initially_biased_blocks(0.99), 1);
    }

    #[test]
    fn empty_branch_list_returns_empty() {
        let trace = vec![rec(0, true, 1)];
        assert!(block_bias_series(trace, &[], 10).is_empty());
    }

    #[test]
    fn gap_model_has_changing_branches() {
        let pop = spec2000::benchmark("gap").unwrap().population(1_000_000);
        let ids = changing_branches(&pop, 5);
        assert_eq!(ids.len(), 5);
        for id in &ids {
            assert!(pop.branches()[id.index()].behavior.phase_count() > 1);
        }
    }
}
