//! Analytic misspeculation oracle: the 3-state FSM as a Markov chain
//! over bias classes.
//!
//! Instead of simulating a trace event-by-event, this model abstracts
//! each branch's outcome stream into *bias classes* — consecutive blocks
//! of `monitor_period` executions summarized by their taken fraction —
//! and propagates a probability distribution over the controller's
//! macro-states (Monitor, Biased, Unbiased, Disabled) through that block
//! sequence. Transition probabilities come from closed forms, in the
//! linear-equational probabilistic-dataflow tradition (Di Pierro &
//! Wiklicky; see PAPERS.md):
//!
//! * **Classification** — a monitoring window drawing from a block is a
//!   sample *without replacement*, so the taken-count distribution is
//!   hypergeometric: a window aligned with a whole block classifies
//!   deterministically (zero variance), and only misaligned windows fall
//!   back to a binomial over the mixed mean. The window's mass is split
//!   three ways (biased-taken / biased-not-taken / unbiased) by the
//!   exact `max(t, s−t)/s ≥ θ` rule.
//! * **Eviction** — under the asymmetric counter (+u per miss, −d per
//!   correct, evict at ≥ T) with per-exec miss probability `q`, the
//!   counter gains `g = u − d(1−q)/q` per miss cycle, so eviction takes
//!   `k = 1 + ⌈(T − c − u)/g⌉` misses and `k/q` executions when the
//!   drift `δ = uq − d(1−q)` is positive; otherwise the branch
//!   misspeculates at rate `q` indefinitely.
//! * **Oscillation** — particles carry their entry count, so the
//!   disable cap is applied exactly where the controller applies it
//!   (refusing the `(limit+1)`-th entry).
//!
//! ## Stated assumptions (what a divergence means)
//!
//! 1. Outcomes within a block are exchangeable: ordering effects finer
//!    than `monitor_period` are invisible (e.g. a burst of misses at a
//!    block boundary).
//! 2. Eviction uses expected drift with the saturation-at-zero floor
//!    applied only between blocks; variance-driven evictions when
//!    `δ ≤ 0` are not modeled.
//! 3. The particle population is capped; merged particles average their
//!    counter values.
//!
//! Predictions are compared against simulation with the documented
//! tolerance ([`TOLERANCE_ABS`] / [`TOLERANCE_REL`]); a scenario outside
//! tolerance is a *model divergence* — interesting by construction —
//! and is reported as a structured artifact by the fuzzer, never
//! silently accepted. Parameterizations the model does not cover return
//! [`ModelOutcome::Unsupported`] with the reason.

use crate::params::{ControllerParams, EvictionMode, MonitorPolicy, Revisit};
use rsc_trace::BranchRecord;

/// Absolute misspeculation-rate tolerance for prediction vs simulation.
pub const TOLERANCE_ABS: f64 = 0.02;
/// Relative tolerance (fraction of the larger rate), used when the
/// absolute gate fails.
pub const TOLERANCE_REL: f64 = 0.15;

/// Maximum particles per branch before low-weight pruning.
const MAX_PARTICLES: usize = 64;

/// `true` if `predicted` and `simulated` misspeculation rates agree
/// within the documented tolerance.
pub fn within_tolerance(predicted: f64, simulated: f64) -> bool {
    let abs = (predicted - simulated).abs();
    abs <= TOLERANCE_ABS || abs <= TOLERANCE_REL * predicted.max(simulated)
}

/// Result of asking the model about one `(params, trace)` pair.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelOutcome {
    /// The parameterization is inside the modeled subset.
    Supported(Prediction),
    /// The parameterization uses a mechanism the chain does not model;
    /// the payload says which.
    Unsupported(&'static str),
}

/// Steady-state expectations solved from the chain.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Prediction {
    /// Trace length the prediction covers.
    pub events: u64,
    /// Expected misspeculated executions.
    pub expected_misses: f64,
    /// `expected_misses / events` (0 for an empty trace).
    pub misspec_rate: f64,
    /// Expected `EnterBiased` transitions.
    pub enters: f64,
    /// Expected `ExitBiased` transitions (counter evictions).
    pub exits: f64,
    /// Expected `EnterUnbiased` transitions.
    pub unbiased: f64,
    /// Expected `RevisitMonitor` transitions.
    pub revisits: f64,
    /// Expected `Disabled` transitions (oscillation cap).
    pub disables: f64,
}

#[derive(Debug, Clone, Copy)]
enum PState {
    Monitor { execs: u64, staken: f64, svar: f64 },
    Biased { taken: bool, counter: f64 },
    Unbiased { rem: Option<u64> },
    Disabled,
}

#[derive(Debug, Clone, Copy)]
struct Particle {
    w: f64,
    entries: u32,
    state: PState,
}

/// Running expectations accumulated while the chain advances.
#[derive(Default)]
struct Acc {
    misses: f64,
    enters: f64,
    exits: f64,
    unbiased: f64,
    revisits: f64,
    disables: f64,
}

/// Returns why `params` falls outside the modeled subset, if it does.
fn unsupported_reason(params: &ControllerParams) -> Option<&'static str> {
    if matches!(params.monitor_policy, MonitorPolicy::Confidence { .. }) {
        return Some("confidence-interval monitor not modeled");
    }
    if params.monitor_sample_rate != 1 {
        return Some("monitor sampling (rate > 1) not modeled");
    }
    if matches!(params.eviction, EvictionMode::Sampling { .. }) {
        return Some("sampling eviction not modeled");
    }
    if params.optimization_latency != 0 {
        return Some("nonzero optimization latency not modeled");
    }
    None
}

/// Solves the chain for `trace` under `params`.
///
/// # Examples
///
/// ```
/// use rsc_control::analysis::markov::{predict, ModelOutcome};
/// use rsc_control::ControllerParams;
/// use rsc_trace::Scenario;
///
/// let params = ControllerParams::scaled().with_latency(0);
/// let trace = Scenario::PhaseFlip { branches: 2, flip_after: 4_000 }
///     .generate(20_000, 7);
/// let ModelOutcome::Supported(p) = predict(&params, &trace) else {
///     panic!("scaled params are in the modeled subset");
/// };
/// // Long perfectly-biased phases: almost everything speculates
/// // correctly, so the predicted miss rate is tiny.
/// assert!(p.misspec_rate < 0.01);
/// ```
pub fn predict(params: &ControllerParams, trace: &[BranchRecord]) -> ModelOutcome {
    if let Some(reason) = unsupported_reason(params) {
        return ModelOutcome::Unsupported(reason);
    }
    // Per-branch outcome streams.
    let mut streams: Vec<Vec<bool>> = Vec::new();
    for r in trace {
        let idx = r.branch.index();
        if streams.len() <= idx {
            streams.resize_with(idx + 1, Vec::new);
        }
        streams[idx].push(r.taken);
    }
    let mut acc = Acc::default();
    let block = params.monitor_period.max(1) as usize;
    for outcomes in &streams {
        solve_branch(outcomes, block, params, &mut acc);
    }
    let events = trace.len() as u64;
    ModelOutcome::Supported(Prediction {
        events,
        expected_misses: acc.misses,
        misspec_rate: if events == 0 {
            0.0
        } else {
            acc.misses / events as f64
        },
        enters: acc.enters,
        exits: acc.exits,
        unbiased: acc.unbiased,
        revisits: acc.revisits,
        disables: acc.disables,
    })
}

fn solve_branch(outcomes: &[bool], block: usize, params: &ControllerParams, acc: &mut Acc) {
    let mut particles = vec![Particle {
        w: 1.0,
        entries: 0,
        state: PState::Monitor {
            execs: 0,
            staken: 0.0,
            svar: 0.0,
        },
    }];
    let mut next = Vec::new();
    for chunk in outcomes.chunks(block) {
        let block_n = chunk.len() as u64;
        let block_t = chunk.iter().filter(|&&t| t).count() as u64;
        next.clear();
        for p in particles.drain(..) {
            advance(p, block_n, block_t as f64, params, acc, &mut next);
        }
        merge(&mut next);
        std::mem::swap(&mut particles, &mut next);
    }
}

/// Variance of the taken count when drawing `k` of `n` remaining
/// executions whose remaining taken fraction is `p` (hypergeometric;
/// zero when the draw exhausts the block).
fn hyper_var(k: u64, n: u64, p: f64) -> f64 {
    if n <= 1 || k >= n {
        return 0.0;
    }
    k as f64 * p * (1.0 - p) * ((n - k) as f64 / (n - 1) as f64)
}

/// Pushes one particle through a block of `block_n` executions with
/// `block_t` expected taken, splitting at classifications.
fn advance(
    p: Particle,
    block_n: u64,
    block_t: f64,
    params: &ControllerParams,
    acc: &mut Acc,
    out: &mut Vec<Particle>,
) {
    // (particle, execs already consumed from this block, expected taken
    // remaining in the block)
    let mut stack = vec![(p, 0u64, block_t)];
    while let Some((mut p, done, mut t_r)) = stack.pop() {
        let n_r = block_n - done;
        if n_r == 0 || p.w <= 0.0 {
            out.push(p);
            continue;
        }
        let p_loc = (t_r / n_r as f64).clamp(0.0, 1.0);
        match p.state {
            PState::Disabled | PState::Unbiased { rem: None } => out.push(p),
            PState::Unbiased { rem: Some(rem) } => {
                if rem > n_r {
                    p.state = PState::Unbiased {
                        rem: Some(rem - n_r),
                    };
                    out.push(p);
                } else {
                    // The `rem`-th execution triggers the revisit; the
                    // next one is the first monitored execution.
                    t_r -= rem as f64 * p_loc;
                    acc.revisits += p.w;
                    p.state = PState::Monitor {
                        execs: 0,
                        staken: 0.0,
                        svar: 0.0,
                    };
                    stack.push((p, done + rem, t_r));
                }
            }
            PState::Monitor {
                execs,
                staken,
                svar,
            } => {
                let need = params.monitor_period - execs;
                if need > n_r {
                    p.state = PState::Monitor {
                        execs: execs + n_r,
                        staken: staken + n_r as f64 * p_loc,
                        svar: svar + hyper_var(n_r, n_r, p_loc),
                    };
                    out.push(p);
                } else {
                    let staken = staken + need as f64 * p_loc;
                    let svar = svar + hyper_var(need, n_r, p_loc);
                    t_r -= need as f64 * p_loc;
                    let done = done + need;
                    for (t_count, prob) in t_distribution(params.monitor_period, staken, svar) {
                        if prob <= 0.0 {
                            continue;
                        }
                        let mut child = Particle { w: p.w * prob, ..p };
                        let s = params.monitor_period;
                        let majority = t_count.max(s - t_count);
                        let biased = majority as f64 / s as f64 >= params.selection_threshold;
                        if !biased {
                            acc.unbiased += child.w;
                            child.state = PState::Unbiased {
                                rem: match params.revisit {
                                    Revisit::After(n) => Some(n),
                                    Revisit::Never => None,
                                },
                            };
                        } else if params
                            .oscillation_limit
                            .is_some_and(|limit| child.entries >= limit)
                        {
                            acc.disables += child.w;
                            child.state = PState::Disabled;
                        } else {
                            child.entries += 1;
                            acc.enters += child.w;
                            child.state = PState::Biased {
                                taken: t_count * 2 >= s,
                                counter: 0.0,
                            };
                        }
                        stack.push((child, done, t_r));
                    }
                }
            }
            PState::Biased { taken, counter } => {
                let q = if taken { 1.0 - p_loc } else { p_loc };
                let evict = match params.eviction {
                    EvictionMode::Never | EvictionMode::Sampling { .. } => None,
                    EvictionMode::Counter {
                        up,
                        down,
                        threshold,
                    } => {
                        eviction_point(counter, q, f64::from(up), f64::from(down), threshold.into())
                    }
                };
                match evict {
                    Some((k_miss, e_execs)) if e_execs <= n_r => {
                        // The eviction fires on the k-th miss; that
                        // execution is itself counted.
                        acc.misses += p.w * k_miss;
                        acc.exits += p.w;
                        t_r -= e_execs as f64 * p_loc;
                        p.state = PState::Monitor {
                            execs: 0,
                            staken: 0.0,
                            svar: 0.0,
                        };
                        stack.push((p, done + e_execs, t_r));
                    }
                    _ => {
                        acc.misses += p.w * n_r as f64 * q;
                        if let EvictionMode::Counter {
                            up,
                            down,
                            threshold,
                        } = params.eviction
                        {
                            let delta = f64::from(up) * q - f64::from(down) * (1.0 - q);
                            // The controller never lets the counter rest
                            // at or above the threshold.
                            p.state = PState::Biased {
                                taken,
                                counter: (counter + delta * n_r as f64)
                                    .clamp(0.0, f64::from(threshold)),
                            };
                        }
                        out.push(p);
                    }
                }
            }
        }
    }
}

/// Closed-form eviction point for the asymmetric counter: returns the
/// expected `(misses, executions)` until the counter crosses `t`, or
/// `None` when the drift never gets there.
fn eviction_point(c: f64, q: f64, u: f64, d: f64, t: f64) -> Option<(f64, u64)> {
    if q <= 0.0 {
        return None;
    }
    // Net counter gain per miss cycle (one miss plus its expected run of
    // corrects).
    let gain = u - d * (1.0 - q) / q;
    let k_miss = if c + u >= t {
        1.0
    } else {
        if gain <= 0.0 {
            return None;
        }
        1.0 + ((t - c - u) / gain).ceil()
    };
    let e_execs = (k_miss / q).round().max(1.0);
    if e_execs > u64::MAX as f64 {
        return None;
    }
    Some((k_miss, e_execs as u64))
}

/// Distribution of the window's taken count: a point mass when the
/// accumulated variance is (numerically) zero — a window aligned with
/// whole blocks — otherwise a binomial over the mixed mean.
fn t_distribution(s: u64, staken: f64, svar: f64) -> Vec<(u64, f64)> {
    let mean = staken.clamp(0.0, s as f64);
    if svar < 1e-9 {
        return vec![(mean.round() as u64, 1.0)];
    }
    let p = mean / s as f64;
    if p <= 0.0 {
        return vec![(0, 1.0)];
    }
    if p >= 1.0 {
        return vec![(s, 1.0)];
    }
    // Binomial pmf in log space; `s` is a monitor period, so the O(s)
    // enumeration is cheap.
    let n = s as usize;
    let mut ln_fact = vec![0.0f64; n + 1];
    for i in 1..=n {
        ln_fact[i] = ln_fact[i - 1] + (i as f64).ln();
    }
    let (lp, lq) = (p.ln(), (1.0 - p).ln());
    (0..=n)
        .map(|t| {
            let ln_pmf =
                ln_fact[n] - ln_fact[t] - ln_fact[n - t] + t as f64 * lp + (n - t) as f64 * lq;
            (t as u64, ln_pmf.exp())
        })
        .collect()
}

/// Coalesces particles with the same discrete signature and prunes the
/// population to [`MAX_PARTICLES`], preserving total weight.
fn merge(particles: &mut Vec<Particle>) {
    let mut merged: Vec<Particle> = Vec::with_capacity(particles.len());
    'outer: for p in particles.drain(..) {
        for m in &mut merged {
            if same_signature(m, &p) {
                let w = m.w + p.w;
                if let (PState::Biased { counter: a, .. }, PState::Biased { counter: b, .. }) =
                    (&mut m.state, &p.state)
                {
                    *a = (*a * m.w + b * p.w) / w;
                }
                if let (
                    PState::Monitor { staken, svar, .. },
                    PState::Monitor {
                        staken: bs,
                        svar: bv,
                        ..
                    },
                ) = (&mut m.state, &p.state)
                {
                    *staken = (*staken * m.w + bs * p.w) / w;
                    *svar = svar.max(*bv);
                }
                m.w = w;
                continue 'outer;
            }
        }
        merged.push(p);
    }
    merged.retain(|p| p.w > 1e-12);
    if merged.len() > MAX_PARTICLES {
        merged.sort_by(|a, b| b.w.partial_cmp(&a.w).unwrap_or(std::cmp::Ordering::Equal));
        let total: f64 = merged.iter().map(|p| p.w).sum();
        merged.truncate(MAX_PARTICLES);
        let kept: f64 = merged.iter().map(|p| p.w).sum();
        if kept > 0.0 {
            let scale = total / kept;
            for p in &mut merged {
                p.w *= scale;
            }
        }
    }
    *particles = merged;
}

fn same_signature(a: &Particle, b: &Particle) -> bool {
    if a.entries != b.entries {
        return false;
    }
    match (&a.state, &b.state) {
        (PState::Monitor { execs: x, .. }, PState::Monitor { execs: y, .. }) => x == y,
        (PState::Biased { taken: x, .. }, PState::Biased { taken: y, .. }) => x == y,
        (PState::Unbiased { rem: x }, PState::Unbiased { rem: y }) => x == y,
        (PState::Disabled, PState::Disabled) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ReactiveController;
    use crate::params::Revisit;
    use rsc_trace::Scenario;

    fn tiny() -> ControllerParams {
        ControllerParams {
            monitor_period: 10,
            monitor_policy: MonitorPolicy::FixedWindow,
            monitor_sample_rate: 1,
            selection_threshold: 0.995,
            eviction: EvictionMode::Counter {
                up: 50,
                down: 1,
                threshold: 100,
            },
            revisit: Revisit::After(20),
            oscillation_limit: Some(3),
            optimization_latency: 0,
        }
    }

    fn simulated_rate(params: &ControllerParams, trace: &[rsc_trace::BranchRecord]) -> f64 {
        let mut ctl = ReactiveController::builder(*params)
            .build()
            .expect("valid params");
        for r in trace {
            ctl.observe(r);
        }
        let s = ctl.stats();
        if s.events == 0 {
            0.0
        } else {
            s.incorrect as f64 / s.events as f64
        }
    }

    #[test]
    fn unsupported_params_are_flagged_not_guessed() {
        let trace = Scenario::UniformRandom { branches: 2 }.generate(100, 1);
        let p = tiny().with_latency(500);
        assert!(matches!(
            predict(&p, &trace),
            ModelOutcome::Unsupported(reason) if reason.contains("latency")
        ));
        let p = tiny().with_monitor_sampling(4);
        assert!(matches!(predict(&p, &trace), ModelOutcome::Unsupported(_)));
    }

    #[test]
    fn empty_trace_predicts_zero() {
        match predict(&tiny(), &[]) {
            ModelOutcome::Supported(p) => {
                assert_eq!(p.expected_misses, 0.0);
                assert_eq!(p.misspec_rate, 0.0);
            }
            ModelOutcome::Unsupported(r) => panic!("{r}"),
        }
    }

    #[test]
    fn perfectly_biased_branch_is_near_free() {
        let trace = Scenario::PhaseFlip {
            branches: 1,
            flip_after: 1_000_000,
        }
        .generate(5_000, 3);
        let ModelOutcome::Supported(p) = predict(&tiny(), &trace) else {
            panic!("tiny is supported");
        };
        assert!(p.misspec_rate < 1e-6, "rate {}", p.misspec_rate);
        assert!(p.enters >= 0.99, "enters {}", p.enters);
    }

    #[test]
    fn prediction_tracks_simulation_across_scenarios() {
        let scenarios = [
            Scenario::PhaseFlip {
                branches: 4,
                flip_after: 50,
            },
            Scenario::HysteresisStraddle {
                warmup: 10,
                period: 3,
            },
            Scenario::ThresholdOscillator { window: 10 },
            Scenario::RevisitAlias { period: 30 },
            Scenario::UniformRandom { branches: 8 },
            Scenario::BurstyHotSet { hot: 3, burst: 40 },
            Scenario::CorrelatedGroups {
                groups: 2,
                per_group: 3,
                flip_every: 50,
                churn: 200,
            },
        ];
        for s in scenarios {
            let trace = s.generate(4_000, 11);
            let ModelOutcome::Supported(p) = predict(&tiny(), &trace) else {
                panic!("tiny is supported");
            };
            let sim = simulated_rate(&tiny(), &trace);
            assert!(
                within_tolerance(p.misspec_rate, sim),
                "{}: predicted {:.5} vs simulated {:.5}",
                s.name(),
                p.misspec_rate,
                sim
            );
        }
    }

    #[test]
    fn tolerance_gate_behaves() {
        assert!(within_tolerance(0.0, 0.0));
        assert!(within_tolerance(0.10, 0.11));
        assert!(within_tolerance(0.30, 0.33));
        assert!(!within_tolerance(0.10, 0.30));
    }
}
