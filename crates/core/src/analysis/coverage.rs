//! FSM-transition coverage map — the fuzzer's guidance signal.
//!
//! A coverage signature summarizes which corners of the controller's
//! transition space a run exercised, at three granularities:
//!
//! * **Kinds** — which of the [`TransitionKind`]s fired at all (11 bits).
//! * **Pairs** — which *consecutive per-branch* kind pairs occurred
//!   (11×11 bits). A branch that goes `EnterBiased → ExitBiased →
//!   EnterBiased` covers different FSM arcs than one that goes
//!   `EnterBiased → Disabled`, even if both fire the same kinds overall.
//!   Pair extraction walks [`TransitionLog::as_slice`], so it needs
//!   [`TransitionLogPolicy::Full`](crate::translog::TransitionLogPolicy)
//!   to be complete; under lossy policies only the retained suffix
//!   contributes.
//! * **Buckets** — AFL-style log2 hit-count buckets per kind (11×16
//!   bits): a run that fires `ExitBiased` 200 times is distinguishable
//!   from one that fires it once, without rewarding every +1.
//!
//! Signatures merge by bitwise OR; [`TransitionCoverage::points`] is the
//! population count, so "strictly more coverage" is a plain integer
//! comparison.

use std::collections::HashMap;

use crate::controller::TransitionKind;
use crate::translog::TransitionLog;

/// Number of transition kinds (width of the kind axis).
pub const KINDS: usize = TransitionKind::ALL.len();

const PAIR_WORDS: usize = KINDS * KINDS / 64 + 1;

/// A mergeable bitset over the controller's FSM-transition space.
///
/// # Examples
///
/// ```
/// use rsc_control::analysis::coverage::TransitionCoverage;
/// use rsc_control::{TransitionLog, TransitionLogPolicy};
///
/// let log = TransitionLog::new(TransitionLogPolicy::Full);
/// let empty = TransitionCoverage::from_log(&log);
/// assert_eq!(empty.points(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransitionCoverage {
    /// Kind `k` observed at least once ⇔ bit `k` set.
    kind_bits: u16,
    /// Consecutive per-branch pair `(prev, next)` observed ⇔ bit
    /// `prev.index() * KINDS + next.index()` set.
    pair_bits: [u64; PAIR_WORDS],
    /// Log2 hit-count bucket `b` reached for kind `k` ⇔ bit `b` of
    /// `bucket_bits[k]` set.
    bucket_bits: [u16; KINDS],
}

/// Maps a hit count to its log2 bucket index in `0..16`.
fn bucket(count: u64) -> u32 {
    debug_assert!(count > 0);
    (63 - count.leading_zeros()).min(15)
}

impl TransitionCoverage {
    /// Extracts the signature of one run from its transition log.
    ///
    /// Kind and bucket bits come from the exact per-kind counters (valid
    /// under every log policy); pair bits come from the retained event
    /// sequence and are complete only under the `Full` policy.
    pub fn from_log(log: &TransitionLog) -> Self {
        let mut cov = Self::default();
        for kind in TransitionKind::ALL {
            let n = log.count(kind);
            if n > 0 {
                cov.kind_bits |= 1 << kind.index();
                cov.bucket_bits[kind.index()] |= 1 << bucket(n);
            }
        }
        let mut last: HashMap<u32, usize> = HashMap::new();
        for ev in log.as_slice() {
            let next = ev.kind.index();
            let key = ev.branch.index() as u32;
            if let Some(prev) = last.insert(key, next) {
                let bit = prev * KINDS + next;
                cov.pair_bits[bit / 64] |= 1 << (bit % 64);
            }
        }
        cov
    }

    /// ORs `other` into `self`; returns how many points were new.
    pub fn merge(&mut self, other: &Self) -> u32 {
        let before = self.points();
        self.kind_bits |= other.kind_bits;
        for (a, b) in self.pair_bits.iter_mut().zip(other.pair_bits) {
            *a |= b;
        }
        for (a, b) in self.bucket_bits.iter_mut().zip(other.bucket_bits) {
            *a |= b;
        }
        self.points() - before
    }

    /// Total covered points (population count across all three axes).
    pub fn points(&self) -> u32 {
        self.kind_bits.count_ones()
            + self.pair_bits.iter().map(|w| w.count_ones()).sum::<u32>()
            + self.bucket_bits.iter().map(|w| w.count_ones()).sum::<u32>()
    }

    /// Points covered by `self` that `base` does not cover.
    pub fn new_points(&self, base: &Self) -> u32 {
        let mut merged = *base;
        merged.merge(self)
    }

    /// Names of the kinds this signature has seen, in index order.
    pub fn kinds_seen(&self) -> Vec<&'static str> {
        TransitionKind::ALL
            .into_iter()
            .filter(|k| self.kind_bits & (1 << k.index()) != 0)
            .map(|k| k.name())
            .collect()
    }

    /// Compact hex encoding for artifacts; inverse of [`Self::decode`].
    pub fn encode(&self) -> String {
        let mut s = format!("{:04x}", self.kind_bits);
        for w in self.pair_bits {
            s.push_str(&format!("{w:016x}"));
        }
        for w in self.bucket_bits {
            s.push_str(&format!("{w:04x}"));
        }
        s
    }

    /// Parses a signature produced by [`Self::encode`].
    pub fn decode(s: &str) -> Option<Self> {
        let expect = 4 + PAIR_WORDS * 16 + KINDS * 4;
        if s.len() != expect || !s.is_ascii() {
            return None;
        }
        let mut cov = Self {
            kind_bits: u16::from_str_radix(&s[..4], 16).ok()?,
            ..Self::default()
        };
        let mut at = 4;
        for w in &mut cov.pair_bits {
            *w = u64::from_str_radix(&s[at..at + 16], 16).ok()?;
            at += 16;
        }
        for w in &mut cov.bucket_bits {
            *w = u16::from_str_radix(&s[at..at + 4], 16).ok()?;
            at += 4;
        }
        Some(cov)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::TransitionEvent;
    use crate::translog::TransitionLogPolicy;
    use rsc_trace::BranchId;

    fn ev(branch: u32, kind: TransitionKind) -> TransitionEvent {
        TransitionEvent {
            branch: BranchId::new(branch),
            kind,
            event_index: 0,
            instr: 0,
            direction: None,
        }
    }

    #[test]
    fn counts_kinds_pairs_and_buckets() {
        let mut log = TransitionLog::new(TransitionLogPolicy::Full);
        log.push(ev(0, TransitionKind::EnterBiased));
        log.push(ev(0, TransitionKind::ExitBiased));
        log.push(ev(1, TransitionKind::EnterUnbiased));
        let cov = TransitionCoverage::from_log(&log);
        // 3 kinds + 1 pair (EnterBiased→ExitBiased on branch 0) +
        // 3 buckets (count 1 for each kind).
        assert_eq!(cov.points(), 7);
        assert_eq!(
            cov.kinds_seen(),
            vec!["enter_biased", "exit_biased", "enter_unbiased"]
        );
    }

    #[test]
    fn pairs_are_per_branch_not_global() {
        let mut log = TransitionLog::new(TransitionLogPolicy::Full);
        log.push(ev(0, TransitionKind::EnterBiased));
        log.push(ev(1, TransitionKind::ExitBiased));
        let cov = TransitionCoverage::from_log(&log);
        // Interleaving on different branches yields no pair bit.
        assert_eq!(cov.points(), 4);
    }

    #[test]
    fn buckets_separate_hit_magnitudes() {
        let mut a = TransitionLog::new(TransitionLogPolicy::CountsOnly);
        a.push(ev(0, TransitionKind::EnterBiased));
        let mut b = TransitionLog::new(TransitionLogPolicy::CountsOnly);
        for _ in 0..200 {
            b.push(ev(0, TransitionKind::EnterBiased));
        }
        let ca = TransitionCoverage::from_log(&a);
        let cb = TransitionCoverage::from_log(&b);
        assert_ne!(ca, cb);
        assert_eq!(cb.new_points(&ca), 1, "one new bucket bit");
    }

    #[test]
    fn merge_reports_gain_and_is_idempotent() {
        let mut log = TransitionLog::new(TransitionLogPolicy::Full);
        log.push(ev(0, TransitionKind::EnterBiased));
        let cov = TransitionCoverage::from_log(&log);
        let mut acc = TransitionCoverage::default();
        assert_eq!(acc.merge(&cov), cov.points());
        assert_eq!(acc.merge(&cov), 0);
        assert_eq!(acc, cov);
    }

    #[test]
    fn encode_round_trips() {
        let mut log = TransitionLog::new(TransitionLogPolicy::Full);
        log.push(ev(3, TransitionKind::EnterBiased));
        log.push(ev(3, TransitionKind::Disabled));
        let cov = TransitionCoverage::from_log(&log);
        assert_eq!(TransitionCoverage::decode(&cov.encode()), Some(cov));
        assert_eq!(TransitionCoverage::decode("zz"), None);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket(1), 0);
        assert_eq!(bucket(2), 1);
        assert_eq!(bucket(3), 1);
        assert_eq!(bucket(4), 2);
        assert_eq!(bucket(u64::MAX), 15);
    }
}
