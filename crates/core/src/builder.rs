//! [`ControllerBuilder`]: the single construction path for
//! [`ReactiveController`].
//!
//! The controller's configuration surface grew one seam at a time —
//! `new`, then `with_resilience`, then post-construction log-policy
//! setters — and the observability layer would have added two more. The
//! builder collapses all of it into one fluent assembly step. The
//! `#[deprecated]` legacy constructors and setters that shimmed the old
//! surface for one release have been removed:
//!
//! | Removed | Builder |
//! |---|---|
//! | `ReactiveController::new(p)` | `ReactiveController::builder(p).build()` |
//! | `ReactiveController::with_resilience(p, cfg)` | `ReactiveController::builder(p).resilience(cfg).build()` |
//! | `ctl.set_transition_log_policy(pol)` | `.log_policy(pol)` before `build()` |
//! | `ctl.set_record_transitions(false)` | `.log_policy(TransitionLogPolicy::CountsOnly)` |
//!
//! # Examples
//!
//! ```
//! use rsc_control::prelude::*;
//!
//! let ctl = ReactiveController::builder(ControllerParams::scaled())
//!     .resilience(ResilienceConfig::reliable())
//!     .log_policy(TransitionLogPolicy::RingBuffer(1024))
//!     .metrics()
//!     .build()?;
//! assert!(ctl.metrics().is_some());
//! # Ok::<(), InvalidParamsError>(())
//! ```
//!
//! The decision rules themselves are pluggable via
//! [`policy`](ControllerBuilder::policy) — see the
//! [policy module](crate::policy) for the zoo:
//!
//! ```
//! use rsc_control::prelude::*;
//!
//! let ctl = ReactiveController::builder(ControllerParams::scaled())
//!     .policy(CostAware::default())
//!     .build()?;
//! assert_eq!(ctl.policy_id(), "cost-aware");
//! # Ok::<(), InvalidParamsError>(())
//! ```

use crate::controller::ReactiveController;
use crate::observe::{ControllerMetrics, EventSink, Telemetry};
use crate::params::{ControllerParams, InvalidParamsError};
use crate::policy::{PaperFsm, Policy};
use crate::resilience::{ResilienceConfig, ResilienceState};
use crate::shard::ShardedController;
use crate::translog::{TransitionLog, TransitionLogPolicy};
use std::sync::Arc;

/// Assembles a [`ReactiveController`] from parameters, an optional
/// resilience layer, a transition-log policy, and optional telemetry.
///
/// Created by [`ReactiveController::builder`]. Nothing is validated until
/// [`build`](ControllerBuilder::build), which checks the parameters and
/// resilience configuration together and reports the first offending
/// field.
#[derive(Clone)]
pub struct ControllerBuilder {
    params: ControllerParams,
    resilience: Option<ResilienceConfig>,
    log_policy: TransitionLogPolicy,
    metrics: bool,
    interval_bounds: Option<Vec<u64>>,
    sink: Option<Arc<dyn EventSink>>,
    shards: usize,
    pool_threads: usize,
    policy: Arc<dyn Policy>,
}

impl std::fmt::Debug for ControllerBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControllerBuilder")
            .field("params", &self.params)
            .field("resilience", &self.resilience)
            .field("log_policy", &self.log_policy)
            .field("metrics", &self.metrics)
            .field("interval_bounds", &self.interval_bounds)
            .field("sink", &self.sink.is_some())
            .field("shards", &self.shards)
            .field("pool_threads", &self.pool_threads)
            .field("policy", &self.policy.id())
            .finish()
    }
}

impl ControllerBuilder {
    pub(crate) fn new(params: ControllerParams) -> Self {
        ControllerBuilder {
            params,
            resilience: None,
            log_policy: TransitionLogPolicy::Full,
            metrics: false,
            interval_bounds: None,
            sink: None,
            shards: 1,
            pool_threads: 0,
            policy: Arc::new(PaperFsm),
        }
    }

    /// Sets the control policy (default: the paper-exact [`PaperFsm`]).
    /// See the [policy module](crate::policy) for the built-in zoo and
    /// the trait contract for custom implementations.
    #[must_use]
    pub fn policy(mut self, policy: impl Policy + 'static) -> Self {
        self.policy = Arc::new(policy);
        self
    }

    /// Sets the control policy from a shared handle (e.g. one produced by
    /// [`policy_from_blob`](crate::policy::policy_from_blob) during
    /// checkpoint restore).
    #[must_use]
    pub fn policy_arc(mut self, policy: Arc<dyn Policy>) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches the resilience layer: deployments go through the
    /// configured pipeline (and can fail), and the optional storm breaker
    /// monitors the global misspeculation rate.
    #[must_use]
    pub fn resilience(mut self, config: ResilienceConfig) -> Self {
        self.resilience = Some(config);
        self
    }

    /// Sets the transition-log retention policy (default:
    /// [`TransitionLogPolicy::Full`]). Per-kind counters stay exact under
    /// every policy.
    #[must_use]
    pub fn log_policy(mut self, policy: TransitionLogPolicy) -> Self {
        self.log_policy = policy;
        self
    }

    /// Enables the metrics registry: counters, gauges, and histograms
    /// retrievable via [`ReactiveController::metrics`]. Without this (and
    /// without a sink) the controller carries no telemetry and keeps the
    /// allocation-free chunked fast path.
    #[must_use]
    pub fn metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Overrides the bucket bounds of the four interval-style histograms
    /// (misspeculation interval, biased residency, breaker open/half-open
    /// durations). Implies [`metrics`](ControllerBuilder::metrics).
    /// Bounds must be strictly increasing; [`build`](ControllerBuilder::build)
    /// rejects anything else as an [`InvalidParamsError`].
    #[must_use]
    pub fn interval_bounds(mut self, bounds: &[u64]) -> Self {
        self.metrics = true;
        self.interval_bounds = Some(bounds.to_vec());
        self
    }

    /// Sets the shard count for [`build_sharded`](ControllerBuilder::build_sharded).
    /// The plain [`build`](ControllerBuilder::build) only accepts the
    /// default of 1 — a sharded engine is a different top-level type.
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Caps the worker-pool size for
    /// [`build_sharded`](ControllerBuilder::build_sharded): the pool gets
    /// `min(shards, n)` persistent threads, and `n <= 1` selects the
    /// inline (threadless) engine. The default of 0 defers to the global
    /// [`max_threads`](rsc_util::parallel::max_threads) cap — which the
    /// `repro --threads` flag sets — evaluated once at build time.
    #[must_use]
    pub fn pool_threads(mut self, n: usize) -> Self {
        self.pool_threads = n;
        self
    }

    /// Streams observability events ([`crate::observe::ObsEvent`]) to
    /// `sink`. The sink is shared: clones of the controller keep emitting
    /// to the same destination.
    #[must_use]
    pub fn event_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Validates the assembled configuration and constructs the
    /// controller.
    ///
    /// # Errors
    ///
    /// Returns an [`InvalidParamsError`] naming the first offending field
    /// in the parameters or resilience configuration.
    pub fn build(self) -> Result<ReactiveController, InvalidParamsError> {
        if self.shards != 1 {
            return Err(InvalidParamsError::bad_field(
                "shards",
                self.shards,
                "build() constructs a sequential controller; use build_sharded()",
            ));
        }
        self.params.validate()?;
        let resilience = match self.resilience {
            Some(config) => Some(ResilienceState::new(config)?),
            None => None,
        };
        let mut log = TransitionLog::default();
        log.set_policy(self.log_policy);
        let telemetry = if self.metrics || self.sink.is_some() {
            let metrics = if self.metrics {
                Some(match &self.interval_bounds {
                    Some(bounds) => ControllerMetrics::with_interval_bounds(bounds)?,
                    None => ControllerMetrics::new(),
                })
            } else {
                None
            };
            Some(Box::new(Telemetry {
                metrics,
                sink: self.sink,
            }))
        } else {
            None
        };
        Ok(ReactiveController {
            params: self.params,
            branches: Vec::new(),
            log,
            events: 0,
            instructions: 0,
            correct: 0,
            incorrect: 0,
            resilience,
            telemetry,
            policy: self.policy,
        })
    }

    /// Validates the configuration and constructs a [`ShardedController`]
    /// with the shard count set via [`shards`](ControllerBuilder::shards)
    /// (default 1).
    ///
    /// Sharding composes with parameters, the log policy, and metrics,
    /// but not with features whose semantics are inherently global and
    /// order-dependent across branches:
    ///
    /// * the resilience layer (its storm breaker watches the *global*
    ///   misspeculation stream);
    /// * event sinks (shards emit concurrently, so interleaving would
    ///   depend on scheduling).
    ///
    /// Both are rejected at any shard count — including 1 — so a config
    /// never changes meaning when the shard count does.
    ///
    /// The engine's persistent worker pool is sized here, once:
    /// `min(shards, cap)` threads, where `cap` is
    /// [`pool_threads`](ControllerBuilder::pool_threads) or (by default)
    /// the global [`max_threads`](rsc_util::parallel::max_threads) cap. A
    /// cap of 1 yields the inline engine — same single-pass routing, no
    /// threads, bit-identical results.
    ///
    /// # Errors
    ///
    /// Returns an [`InvalidParamsError`] for invalid parameters, a shard
    /// count of 0, or a resilience/sink attachment.
    pub fn build_sharded(self) -> Result<ShardedController, InvalidParamsError> {
        if self.shards == 0 {
            return Err(InvalidParamsError::bad_field(
                "shards",
                0usize,
                "must be positive",
            ));
        }
        if self.resilience.is_some() {
            return Err(InvalidParamsError::bad_field(
                "shards",
                self.shards,
                "resilience is global state and cannot be sharded",
            ));
        }
        if self.sink.is_some() {
            return Err(InvalidParamsError::bad_field(
                "shards",
                self.shards,
                "event sinks would interleave nondeterministically across shards",
            ));
        }
        let n = self.shards;
        let thread_cap = if self.pool_threads > 0 {
            self.pool_threads
        } else {
            rsc_util::parallel::max_threads()
        };
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            let one = ControllerBuilder {
                shards: 1,
                sink: None,
                ..self.clone()
            };
            shards.push(one.build()?);
        }
        Ok(ShardedController::from_parts(shards, thread_cap))
    }
}

impl ReactiveController {
    /// Starts building a controller — the sole non-deprecated
    /// construction path. See [`ControllerBuilder`] for the full surface
    /// and the legacy-to-builder migration table.
    pub fn builder(params: ControllerParams) -> ControllerBuilder {
        ControllerBuilder::new(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::VecSink;
    use crate::resilience::{BreakerConfig, ResilienceConfig};

    #[test]
    fn build_reports_offending_field() {
        let mut p = ControllerParams::scaled();
        p.monitor_sample_rate = 0;
        let err = ReactiveController::builder(p).build().unwrap_err();
        assert_eq!(err.field(), Some("monitor_sample_rate"));
    }

    #[test]
    fn build_validates_resilience_too() {
        let config = ResilienceConfig {
            breaker: Some(BreakerConfig {
                buckets: 0,
                ..BreakerConfig::default_config()
            }),
            ..ResilienceConfig::reliable()
        };
        let err = ReactiveController::builder(ControllerParams::scaled())
            .resilience(config)
            .build()
            .unwrap_err();
        assert_eq!(err.field(), Some("breaker.buckets"));
    }

    #[test]
    fn telemetry_absent_unless_requested() {
        let plain = ReactiveController::builder(ControllerParams::scaled())
            .build()
            .unwrap();
        assert!(plain.metrics().is_none());

        let metered = ReactiveController::builder(ControllerParams::scaled())
            .metrics()
            .build()
            .unwrap();
        assert!(metered.metrics().is_some());

        // A sink alone enables telemetry but not the registry.
        let sunk = ReactiveController::builder(ControllerParams::scaled())
            .event_sink(Arc::new(VecSink::new()))
            .build()
            .unwrap();
        assert!(sunk.metrics().is_none());
    }

    #[test]
    fn builder_is_reusable_via_clone() {
        let b = ReactiveController::builder(ControllerParams::scaled())
            .log_policy(TransitionLogPolicy::CountsOnly);
        let a = b.clone().build().unwrap();
        let c = b.build().unwrap();
        assert_eq!(a.stats(), c.stats());
    }
}
