//! Throughput guard for the disabled-telemetry fast path.
//!
//! A controller built without `.metrics()`/`.event_sink(...)` must keep
//! the allocation-free `observe_chunk` hot path: its throughput has to
//! stay within noise of the legacy no-registry driver. The failure mode
//! this guards against is structural, not incremental — if telemetry ever
//! becomes unconditionally attached, every chunk falls back to the
//! per-event path and throughput drops far below the threshold used
//! here, so the generous noise margin still catches the regression.
//!
//! Methodology: the two configurations run in alternation (interleaved
//! trials absorb CPU frequency drift), and the medians are compared.

use rsc_control::prelude::*;
use rsc_control::{run_population_chunked, run_population_chunked_with, TransitionLogPolicy};
use rsc_trace::{spec2000, InputId};
use std::time::Instant;

const EVENTS: u64 = 400_000;
const TRIALS: usize = 7;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

#[test]
fn disabled_telemetry_keeps_the_chunked_fast_path() {
    let pop = spec2000::benchmark("gcc").unwrap().population(EVENTS);
    let legacy = || {
        let t = Instant::now();
        let r = run_population_chunked(
            ControllerParams::scaled(),
            &pop,
            InputId::Eval,
            EVENTS,
            7,
            TransitionLogPolicy::CountsOnly,
        )
        .unwrap();
        (t.elapsed().as_secs_f64(), r.stats)
    };
    let built = || {
        let t = Instant::now();
        let b = ReactiveController::builder(ControllerParams::scaled())
            .log_policy(TransitionLogPolicy::CountsOnly);
        let (r, _) = run_population_chunked_with(b, &pop, InputId::Eval, EVENTS, 7).unwrap();
        (t.elapsed().as_secs_f64(), r.stats)
    };

    // Warm-up: fault in the trace tables and let both paths JIT-warm the
    // branch predictors before any timed trial.
    let (_, a) = legacy();
    let (_, b) = built();
    assert_eq!(a, b, "the two drivers must be behaviorally identical");

    let mut legacy_secs = Vec::with_capacity(TRIALS);
    let mut built_secs = Vec::with_capacity(TRIALS);
    for _ in 0..TRIALS {
        legacy_secs.push(legacy().0);
        built_secs.push(built().0);
    }
    let (lm, bm) = (median(legacy_secs), median(built_secs));
    // A per-event fallback costs well over 2x on this workload; 35%
    // headroom keeps the guard robust on noisy CI machines while still
    // catching any structural regression.
    assert!(
        bm <= lm * 1.35,
        "builder-constructed (telemetry disabled) chunked run is {:.1}% slower than the \
         legacy driver (median {bm:.4}s vs {lm:.4}s) — did the disabled-telemetry \
         fast path regress?",
        (bm / lm - 1.0) * 100.0,
    );
}

#[test]
fn disabled_telemetry_chunked_still_outruns_per_event() {
    // Structural detection of a fast-path regression: on this workload
    // the chunked path is ~2.5x the per-event path (see
    // BENCH_pipeline.json). If a telemetry-free controller ever stopped
    // taking the chunked fast path — e.g. telemetry became
    // unconditionally `Some` and every chunk fell back to per-event —
    // the two timings would converge to ~1x. Requiring ≥1.33x leaves
    // plenty of noise headroom while making the fallback unmistakable.
    let pop = spec2000::benchmark("gzip").unwrap().population(EVENTS);
    let per_event = || {
        let t = Instant::now();
        let b = ReactiveController::builder(ControllerParams::scaled())
            .log_policy(TransitionLogPolicy::CountsOnly);
        let mut ctl = b.build().unwrap();
        for r in pop.trace(InputId::Eval, EVENTS, 3) {
            ctl.observe(&r);
        }
        (t.elapsed().as_secs_f64(), ctl.stats())
    };
    let chunked = || {
        let t = Instant::now();
        let b = ReactiveController::builder(ControllerParams::scaled())
            .log_policy(TransitionLogPolicy::CountsOnly);
        let (r, _) = run_population_chunked_with(b, &pop, InputId::Eval, EVENTS, 3).unwrap();
        (t.elapsed().as_secs_f64(), r.stats)
    };
    let (_, a) = per_event();
    let (_, b) = chunked();
    assert_eq!(a, b, "the two paths must be behaviorally identical");

    let mut pe = Vec::with_capacity(TRIALS);
    let mut ch = Vec::with_capacity(TRIALS);
    for _ in 0..TRIALS {
        pe.push(per_event().0);
        ch.push(chunked().0);
    }
    let (pm, cm) = (median(pe), median(ch));
    assert!(
        cm <= pm * 0.75,
        "telemetry-free chunked run is only {:.2}x the per-event path \
         (median {cm:.4}s vs {pm:.4}s) — is the disabled-telemetry fast \
         path falling back to per-event?",
        pm / cm,
    );
}
