//! Property test for checkpoint/restore: snapshot at a random index,
//! restore, replay the rest of the trace — the resumed controller must be
//! **bit-identical** to one that ran straight through. Checked on the
//! per-event decisions, the final `ControlStats`, the retained transition
//! log (including ring-buffer amortization state), per-branch snapshots,
//! and a re-snapshot of both controllers at the end (byte equality of the
//! serialized state is the strongest form of the property).
//!
//! Randomness is a seeded `SplitMix64` (this workspace vendors no
//! property-testing framework), so every failure is reproducible from the
//! seed printed in the assertion message.

use rsc_control::resilience::{
    BreakerConfig, DeployerSpec, FaultMode, FaultScope, FaultSpec, RetryPolicy,
};
use rsc_control::{
    ControllerParams, EvictionMode, MonitorPolicy, ReactiveController, ResilienceConfig, Revisit,
    TransitionLogPolicy,
};
use rsc_trace::rng::SplitMix64;
use rsc_trace::{BranchId, BranchRecord};

fn tiny_params() -> ControllerParams {
    ControllerParams {
        monitor_period: 60,
        monitor_policy: MonitorPolicy::FixedWindow,
        monitor_sample_rate: 1,
        selection_threshold: 0.9,
        eviction: EvictionMode::Counter {
            up: 50,
            down: 1,
            threshold: 150,
        },
        revisit: Revisit::After(400),
        oscillation_limit: Some(4),
        optimization_latency: 25,
    }
}

/// A workload that exercises every controller arc: several branches with
/// seeded per-branch bias that flips phase periodically, so selections,
/// evictions, revisits, retries, and breaker trips all occur.
fn gen_stream(seed: u64, n: u64) -> Vec<BranchRecord> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(n as usize);
    let mut instr = 0u64;
    for i in 0..n {
        let branch = (rng.next_u64() % 5) as u32;
        // Per-branch bias flips every 700 events; branch 4 is always noisy.
        let phase = (i / 700) % 2 == 0;
        let taken = if branch == 4 {
            rng.next_u64().is_multiple_of(2)
        } else if phase ^ branch.is_multiple_of(2) {
            rng.next_u64() % 100 < 97
        } else {
            rng.next_u64() % 100 < 3
        };
        instr += 3 + rng.next_u64() % 8;
        out.push(BranchRecord {
            branch: BranchId::new(branch),
            taken,
            instr,
        });
    }
    out
}

fn faulty_config(breaker: bool) -> ResilienceConfig {
    ResilienceConfig {
        deployer: DeployerSpec::Faulty(FaultSpec {
            seed: 31,
            mode: FaultMode::FixedRate { per_mille: 450 },
            scope: FaultScope::All,
            wasted: 15,
        }),
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff: 30,
            max_backoff: 120,
        },
        breaker: breaker.then_some(BreakerConfig {
            bucket_events: 50,
            buckets: 3,
            open_threshold: 0.15,
            close_threshold: 0.05,
            cooldown_events: 100,
            probe_events: 60,
            mass_evict_top_k: 2,
        }),
    }
}

fn build(config: Option<ResilienceConfig>, policy: TransitionLogPolicy) -> ReactiveController {
    let mut b = ReactiveController::builder(tiny_params()).log_policy(policy);
    if let Some(c) = config {
        b = b.resilience(c);
    }
    b.build().unwrap()
}

/// The property itself: for `rounds` seeded random split points, running
/// straight through equals snapshot-at-split + restore + replay.
fn resume_equals_straight_run(
    config: Option<ResilienceConfig>,
    policy: TransitionLogPolicy,
    seed: u64,
    rounds: u32,
) {
    let stream = gen_stream(seed, 6_000);
    let mut straight = build(config, policy);
    let mut decisions = Vec::with_capacity(stream.len());
    for r in &stream {
        decisions.push(straight.observe(r));
    }

    let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9);
    for round in 0..rounds {
        let split = (rng.next_u64() % (stream.len() as u64 - 1) + 1) as usize;
        let ctx = format!("seed={seed} round={round} split={split} policy={policy:?}");

        let mut first = build(config, policy);
        for r in &stream[..split] {
            first.observe(r);
        }
        let cp = first.snapshot();
        let mut resumed = ReactiveController::restore(&cp).unwrap_or_else(|e| {
            panic!("restore failed ({ctx}): {e}");
        });
        // The restored controller replays the tail; every decision must
        // match the straight run exactly.
        for (i, r) in stream[split..].iter().enumerate() {
            let d = resumed.observe(r);
            assert_eq!(d, decisions[split + i], "decision {} ({ctx})", split + i);
        }

        assert_eq!(resumed.stats(), straight.stats(), "stats ({ctx})");
        assert_eq!(
            resumed.transition_log().as_slice(),
            straight.transition_log().as_slice(),
            "retained transitions ({ctx})"
        );
        for b in 0..5 {
            let id = BranchId::new(b);
            assert_eq!(
                resumed.branch_snapshot(id),
                straight.branch_snapshot(id),
                "branch {b} ({ctx})"
            );
        }
        // Byte-identical re-snapshot: the resumed controller's complete
        // serialized state equals the straight run's.
        assert_eq!(
            resumed.snapshot(),
            straight.snapshot(),
            "re-snapshot bytes ({ctx})"
        );
    }
}

#[test]
fn plain_controller_full_log() {
    resume_equals_straight_run(None, TransitionLogPolicy::Full, 101, 8);
}

#[test]
fn plain_controller_ring_log() {
    // Small ring: split points land on both sides of the internal 2n
    // compaction boundary, which the checkpoint must preserve.
    resume_equals_straight_run(None, TransitionLogPolicy::RingBuffer(7), 202, 8);
}

#[test]
fn plain_controller_counts_only() {
    resume_equals_straight_run(None, TransitionLogPolicy::CountsOnly, 303, 6);
}

#[test]
fn faulty_deployer_full_log() {
    resume_equals_straight_run(
        Some(faulty_config(false)),
        TransitionLogPolicy::Full,
        404,
        8,
    );
}

#[test]
fn faulty_deployer_with_breaker_full_log() {
    resume_equals_straight_run(Some(faulty_config(true)), TransitionLogPolicy::Full, 505, 8);
}

#[test]
fn faulty_deployer_with_breaker_ring_log() {
    resume_equals_straight_run(
        Some(faulty_config(true)),
        TransitionLogPolicy::RingBuffer(9),
        606,
        8,
    );
}

#[test]
fn reliable_layer_ring_log() {
    resume_equals_straight_run(
        Some(ResilienceConfig::reliable()),
        TransitionLogPolicy::RingBuffer(5),
        707,
        6,
    );
}

/// Checkpoints survive a write-to-disk round trip through raw bytes.
#[test]
fn byte_round_trip_through_storage() {
    use rsc_control::ControllerCheckpoint;
    let stream = gen_stream(11, 3_000);
    let mut ctl = build(
        Some(faulty_config(true)),
        TransitionLogPolicy::RingBuffer(6),
    );
    for r in &stream {
        ctl.observe(r);
    }
    let cp = ctl.snapshot();
    let bytes = cp.as_bytes().to_vec();
    let reread = ControllerCheckpoint::from_bytes(bytes);
    assert_eq!(reread, cp);
    let restored = ReactiveController::restore(&reread).unwrap();
    assert_eq!(restored.stats(), ctl.stats());
    assert_eq!(restored.snapshot(), cp);
}
