//! Property tests for the [`Policy`] seam: a controller built with an
//! explicit `.policy(PaperFsm)` is **bit-identical** to the default
//! controller — same decisions, stats, retained transitions, and
//! serialized checkpoint bytes — across random parameterizations, all
//! seven adversary generators, random chunk layouts, and both the
//! sequential and the sharded engines. Telemetry attachment stays
//! observation-only.

use proptest::prelude::*;
use rsc_control::resilience::{DeployerSpec, FaultMode, FaultScope, FaultSpec, RetryPolicy};
use rsc_control::{
    ControllerParams, EvictionMode, MonitorPolicy, PaperFsm, ReactiveController, ResilienceConfig,
    Revisit, ShardedController, TransitionLogPolicy, VecSink,
};
use rsc_trace::{BranchId, BranchRecord, Scenario};
use std::sync::Arc;

/// Arbitrary record streams over a handful of branches.
fn records(max_len: usize) -> impl Strategy<Value = Vec<BranchRecord>> {
    prop::collection::vec((0u32..6, any::<bool>(), 1u64..10), 1..max_len).prop_map(|entries| {
        let mut instr = 0;
        entries
            .into_iter()
            .map(|(b, taken, gap)| {
                instr += gap;
                BranchRecord {
                    branch: BranchId::new(b),
                    taken,
                    instr,
                }
            })
            .collect()
    })
}

/// One of the seven adversarial workload generators, parameterized
/// randomly and rendered to a concrete stream.
fn adversary(len: usize) -> impl Strategy<Value = Vec<BranchRecord>> {
    (0usize..7, 1u64..64, 1u32..9, 1u64..1_000).prop_map(move |(which, t, n, seed)| {
        let scenario = match which {
            0 => Scenario::PhaseFlip {
                branches: n,
                flip_after: t * 4,
            },
            1 => Scenario::HysteresisStraddle {
                warmup: t * 2,
                period: 1 + t % 8,
            },
            2 => Scenario::RevisitAlias { period: t * 2 },
            3 => Scenario::ThresholdOscillator { window: t },
            4 => Scenario::BurstyHotSet { hot: n, burst: t },
            5 => Scenario::UniformRandom { branches: n },
            _ => Scenario::CorrelatedGroups {
                groups: 1 + n / 3,
                per_group: 2,
                flip_every: t * 3,
                churn: t * 5,
            },
        };
        scenario.generate(len as u64, seed)
    })
}

/// Random chunk layout: split points partitioning `len` records.
fn chunk_layout(len: usize) -> Vec<usize> {
    // Deterministic pseudo-splits derived from the length keep the
    // strategy space small while still varying block shapes.
    let mut cuts = vec![0];
    let mut at = 0;
    let mut step = 1 + len % 37;
    while at + step < len {
        at += step;
        cuts.push(at);
        step = 1 + (step * 7 + 3) % 61;
    }
    cuts.push(len);
    cuts
}

/// Small but structurally valid controller parameterizations.
fn params() -> impl Strategy<Value = ControllerParams> {
    (
        1u64..48, // monitor period
        1u64..3,  // sample rate
        prop::sample::select(vec![0.9, 0.99, 1.0]),
        prop::option::of(1u32..5), // oscillation limit
        0u64..600,                 // latency
        prop::option::of(1u64..400),
    )
        .prop_map(
            |(monitor, rate, threshold, osc, latency, revisit)| ControllerParams {
                monitor_period: monitor,
                monitor_policy: MonitorPolicy::FixedWindow,
                monitor_sample_rate: rate,
                selection_threshold: threshold,
                eviction: EvictionMode::Counter {
                    up: 50,
                    down: 1,
                    threshold: 200,
                },
                revisit: match revisit {
                    Some(n) => Revisit::After(n),
                    None => Revisit::Never,
                },
                oscillation_limit: osc,
                optimization_latency: latency,
            },
        )
}

fn log_policy() -> impl Strategy<Value = TransitionLogPolicy> {
    prop::sample::select(vec![
        TransitionLogPolicy::Full,
        TransitionLogPolicy::CountsOnly,
        TransitionLogPolicy::RingBuffer(5),
    ])
}

fn resilience() -> impl Strategy<Value = Option<ResilienceConfig>> {
    prop::option::of(
        (1u64..100, 0u16..800).prop_map(|(seed, per_mille)| ResilienceConfig {
            deployer: DeployerSpec::Faulty(FaultSpec {
                seed,
                mode: FaultMode::FixedRate { per_mille },
                scope: FaultScope::All,
                wasted: 40,
            }),
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: 50,
                max_backoff: 400,
            },
            breaker: None,
        }),
    )
}

/// Drives a controller and returns everything comparable about the run.
fn drive(
    mut ctl: ReactiveController,
    recs: &[BranchRecord],
) -> (ReactiveController, Vec<rsc_control::SpecDecision>) {
    let decisions = recs.iter().map(|r| ctl.observe(r)).collect();
    (ctl, decisions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `builder(p).policy(PaperFsm)` is bit-identical to the default
    /// builder — the paper FSM *is* the default policy, with no drift
    /// between the explicit and implicit paths.
    #[test]
    fn explicit_paper_fsm_matches_default(
        recs in records(1_200),
        p in params(),
        policy in log_policy(),
    ) {
        let default = ReactiveController::builder(p)
            .log_policy(policy)
            .build()
            .unwrap();
        let explicit = ReactiveController::builder(p)
            .log_policy(policy)
            .policy(PaperFsm)
            .build()
            .unwrap();
        prop_assert_eq!(explicit.policy_id(), "paper-fsm");

        let (default, dd) = drive(default, &recs);
        let (explicit, ed) = drive(explicit, &recs);
        prop_assert_eq!(dd, ed);
        prop_assert_eq!(default.stats(), explicit.stats());
        prop_assert_eq!(default.transitions(), explicit.transitions());
        prop_assert_eq!(default.snapshot(), explicit.snapshot());
    }

    /// Across every adversary generator and a random chunk layout, the
    /// chunked fast path and the sharded engine agree with the
    /// sequential per-event path under an explicit `PaperFsm` policy.
    #[test]
    fn paper_fsm_agrees_sequential_chunked_and_sharded(
        recs in adversary(2_000),
        p in params(),
        shards in 1usize..4,
    ) {
        let (sequential, _) = drive(
            ReactiveController::builder(p).policy(PaperFsm).build().unwrap(),
            &recs,
        );

        let mut chunked = ReactiveController::builder(p).policy(PaperFsm).build().unwrap();
        let cuts = chunk_layout(recs.len());
        for w in cuts.windows(2) {
            chunked.observe_chunk(&recs[w[0]..w[1]]);
        }
        prop_assert_eq!(sequential.stats(), chunked.stats());
        prop_assert_eq!(sequential.snapshot(), chunked.snapshot());

        let mut sharded = ReactiveController::builder(p)
            .policy(PaperFsm)
            .shards(shards)
            .build_sharded()
            .unwrap();
        for w in cuts.windows(2) {
            sharded.observe_chunk(&recs[w[0]..w[1]]);
        }
        prop_assert_eq!(sequential.stats(), sharded.stats());
        for b in 0..10u32 {
            prop_assert_eq!(
                sequential.branch_snapshot(BranchId::new(b)),
                sharded.branch_snapshot(BranchId::new(b))
            );
        }
        // The sharded engine round-trips through its own checkpoint.
        let restored = ShardedController::restore(&sharded.snapshot()).unwrap();
        prop_assert_eq!(restored.stats(), sharded.stats());
    }

    /// Resilience composes with the policy seam exactly as it does with
    /// the default controller.
    #[test]
    fn resilience_composes_with_explicit_policy(
        recs in records(1_200),
        p in params(),
        config in resilience(),
    ) {
        let assemble = |explicit: bool| {
            let mut b = ReactiveController::builder(p);
            if explicit {
                b = b.policy(PaperFsm);
            }
            if let Some(c) = config {
                b = b.resilience(c);
            }
            b.build().unwrap()
        };
        let (default, dd) = drive(assemble(false), &recs);
        let (explicit, ed) = drive(assemble(true), &recs);
        prop_assert_eq!(dd, ed);
        prop_assert_eq!(default.stats(), explicit.stats());
        prop_assert_eq!(default.transitions(), explicit.transitions());
        prop_assert_eq!(default.snapshot(), explicit.snapshot());
    }

    /// Telemetry is observation, not intervention: enabling the registry
    /// and a sink changes no decision, stat, or transition, and the
    /// sink's transition stream equals the log.
    #[test]
    fn telemetry_never_perturbs_behavior(
        recs in records(1_200),
        p in params(),
        config in resilience(),
    ) {
        let assemble = || {
            let mut b = ReactiveController::builder(p);
            if let Some(c) = config {
                b = b.resilience(c);
            }
            b
        };
        let plain = assemble().build().unwrap();
        let sink = Arc::new(VecSink::new());
        let metered = assemble().metrics().event_sink(sink.clone()).build().unwrap();

        let (plain, pd) = drive(plain, &recs);
        let (metered, md) = drive(metered, &recs);
        prop_assert_eq!(pd, md);
        prop_assert_eq!(plain.stats(), metered.stats());
        prop_assert_eq!(plain.transitions(), metered.transitions());

        let s = metered.stats();
        let reg = metered.metrics().unwrap();
        prop_assert_eq!(reg.counter_value("rsc_events_total"), Some(s.events));
        prop_assert_eq!(reg.counter_value("rsc_spec_incorrect_total"), Some(s.incorrect));
        let h = reg.histogram_value("rsc_misspec_interval_events").unwrap();
        prop_assert_eq!(h.count(), s.incorrect);

        let sunk_transitions = sink
            .snapshot()
            .iter()
            .filter_map(|e| match e {
                rsc_control::ObsEvent::Transition(t) => Some(*t),
                _ => None,
            })
            .collect::<Vec<_>>();
        prop_assert_eq!(sunk_transitions.as_slice(), metered.transitions());
    }
}
