//! Property tests for the [`ControllerBuilder`] redesign: every
//! controller the deprecated constructors could assemble is reproduced
//! **bit-for-bit** by the builder, across random parameterizations,
//! log policies, resilience layers, and seeded traces — and attaching
//! telemetry never perturbs behavior.

#![allow(deprecated)] // the point of this suite is legacy-vs-builder equality

use proptest::prelude::*;
use rsc_control::resilience::{DeployerSpec, FaultMode, FaultScope, FaultSpec, RetryPolicy};
use rsc_control::{
    ControllerParams, EvictionMode, MonitorPolicy, ReactiveController, ResilienceConfig, Revisit,
    TransitionLogPolicy, VecSink,
};
use rsc_trace::{BranchId, BranchRecord};
use std::sync::Arc;

/// Arbitrary record streams over a handful of branches.
fn records(max_len: usize) -> impl Strategy<Value = Vec<BranchRecord>> {
    prop::collection::vec((0u32..6, any::<bool>(), 1u64..10), 1..max_len).prop_map(|entries| {
        let mut instr = 0;
        entries
            .into_iter()
            .map(|(b, taken, gap)| {
                instr += gap;
                BranchRecord {
                    branch: BranchId::new(b),
                    taken,
                    instr,
                }
            })
            .collect()
    })
}

/// Small but structurally valid controller parameterizations.
fn params() -> impl Strategy<Value = ControllerParams> {
    (
        1u64..48, // monitor period
        1u64..3,  // sample rate
        prop::sample::select(vec![0.9, 0.99, 1.0]),
        prop::option::of(1u32..5), // oscillation limit
        0u64..600,                 // latency
        prop::option::of(1u64..400),
    )
        .prop_map(
            |(monitor, rate, threshold, osc, latency, revisit)| ControllerParams {
                monitor_period: monitor,
                monitor_policy: MonitorPolicy::FixedWindow,
                monitor_sample_rate: rate,
                selection_threshold: threshold,
                eviction: EvictionMode::Counter {
                    up: 50,
                    down: 1,
                    threshold: 200,
                },
                revisit: match revisit {
                    Some(n) => Revisit::After(n),
                    None => Revisit::Never,
                },
                oscillation_limit: osc,
                optimization_latency: latency,
            },
        )
}

fn log_policy() -> impl Strategy<Value = TransitionLogPolicy> {
    prop::sample::select(vec![
        TransitionLogPolicy::Full,
        TransitionLogPolicy::CountsOnly,
        TransitionLogPolicy::RingBuffer(5),
    ])
}

fn resilience() -> impl Strategy<Value = Option<ResilienceConfig>> {
    prop::option::of(
        (1u64..100, 0u16..800).prop_map(|(seed, per_mille)| ResilienceConfig {
            deployer: DeployerSpec::Faulty(FaultSpec {
                seed,
                mode: FaultMode::FixedRate { per_mille },
                scope: FaultScope::All,
                wasted: 40,
            }),
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: 50,
                max_backoff: 400,
            },
            breaker: None,
        }),
    )
}

/// Drives a controller and returns everything comparable about the run.
fn drive(
    mut ctl: ReactiveController,
    recs: &[BranchRecord],
) -> (ReactiveController, Vec<rsc_control::SpecDecision>) {
    let decisions = recs.iter().map(|r| ctl.observe(r)).collect();
    (ctl, decisions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `builder(p).build()` is bit-identical to the deprecated
    /// `new(p)` + `set_transition_log_policy(policy)` sequence — same
    /// decisions, stats, retained transitions, and serialized bytes.
    #[test]
    fn builder_matches_legacy_construction(
        recs in records(1_200),
        p in params(),
        policy in log_policy(),
    ) {
        let mut legacy = ReactiveController::new(p).unwrap();
        legacy.set_transition_log_policy(policy);
        let built = ReactiveController::builder(p).log_policy(policy).build().unwrap();

        let (legacy, ld) = drive(legacy, &recs);
        let (built, bd) = drive(built, &recs);
        prop_assert_eq!(ld, bd);
        prop_assert_eq!(legacy.stats(), built.stats());
        prop_assert_eq!(legacy.transitions(), built.transitions());
        prop_assert_eq!(legacy.snapshot(), built.snapshot());
    }

    /// Same equality through the resilience layer: the deprecated
    /// `with_resilience` equals `.resilience(config)`.
    #[test]
    fn builder_matches_legacy_resilience(
        recs in records(1_200),
        p in params(),
        config in resilience(),
    ) {
        let legacy = match config {
            Some(c) => ReactiveController::with_resilience(p, c).unwrap(),
            None => ReactiveController::new(p).unwrap(),
        };
        let mut b = ReactiveController::builder(p);
        if let Some(c) = config {
            b = b.resilience(c);
        }
        let built = b.build().unwrap();

        let (legacy, ld) = drive(legacy, &recs);
        let (built, bd) = drive(built, &recs);
        prop_assert_eq!(ld, bd);
        prop_assert_eq!(legacy.stats(), built.stats());
        prop_assert_eq!(legacy.transitions(), built.transitions());
        prop_assert_eq!(legacy.snapshot(), built.snapshot());
    }

    /// Telemetry is observation, not intervention: enabling the registry
    /// and a sink changes no decision, stat, or transition, and the
    /// sink's transition stream equals the log.
    #[test]
    fn telemetry_never_perturbs_behavior(
        recs in records(1_200),
        p in params(),
        config in resilience(),
    ) {
        let assemble = || {
            let mut b = ReactiveController::builder(p);
            if let Some(c) = config {
                b = b.resilience(c);
            }
            b
        };
        let plain = assemble().build().unwrap();
        let sink = Arc::new(VecSink::new());
        let metered = assemble().metrics().event_sink(sink.clone()).build().unwrap();

        let (plain, pd) = drive(plain, &recs);
        let (metered, md) = drive(metered, &recs);
        prop_assert_eq!(pd, md);
        prop_assert_eq!(plain.stats(), metered.stats());
        prop_assert_eq!(plain.transitions(), metered.transitions());

        let s = metered.stats();
        let reg = metered.metrics().unwrap();
        prop_assert_eq!(reg.counter_value("rsc_events_total"), Some(s.events));
        prop_assert_eq!(reg.counter_value("rsc_spec_incorrect_total"), Some(s.incorrect));
        let h = reg.histogram_value("rsc_misspec_interval_events").unwrap();
        prop_assert_eq!(h.count(), s.incorrect);

        let sunk_transitions = sink
            .snapshot()
            .iter()
            .filter_map(|e| match e {
                rsc_control::ObsEvent::Transition(t) => Some(*t),
                _ => None,
            })
            .collect::<Vec<_>>();
        prop_assert_eq!(sunk_transitions.as_slice(), metered.transitions());
    }
}
