//! Fault-injection tests for checkpoint decode: truncations, bit
//! flips, version confusion, cross-format confusion, and torn file
//! writes must all surface as typed [`CheckpointError`]s — never a
//! panic, never a silently wrong controller.
//!
//! The serve daemon restores tenants from disk on every cold touch and
//! after every crash, so the strict decoder is what stands between a
//! damaged checkpoint file and a corrupted tenant. The torn-write tests
//! document the required storage discipline: write to a temporary file,
//! then atomically rename into place.

use rsc_control::{
    CheckpointError, ControllerCheckpoint, ControllerParams, ReactiveController, ShardedController,
};
use rsc_trace::Scenario;

/// A controller with telemetry enabled and real traffic behind it, so
/// the blob exercises every section of the format.
fn seeded_checkpoint(shards: usize) -> ControllerCheckpoint {
    let trace = Scenario::PhaseFlip {
        branches: 8,
        flip_after: 300,
    }
    .generate(4_000, 11);
    if shards > 1 {
        let mut ctl = ReactiveController::builder(ControllerParams::scaled())
            .metrics()
            .shards(shards)
            .build_sharded()
            .unwrap();
        ctl.observe_chunk(&trace);
        ctl.snapshot()
    } else {
        let mut ctl = ReactiveController::builder(ControllerParams::scaled())
            .metrics()
            .build()
            .unwrap();
        for r in &trace {
            ctl.observe(r);
        }
        ctl.snapshot()
    }
}

#[test]
fn every_truncation_is_a_typed_error() {
    for shards in [1, 3] {
        let cp = seeded_checkpoint(shards);
        let bytes = cp.as_bytes();
        for cut in 0..bytes.len() {
            let partial = ControllerCheckpoint::from_bytes(&bytes[..cut]);
            let plain = ReactiveController::restore(&partial);
            let sharded = ShardedController::restore(&partial);
            assert!(
                plain.is_err() && sharded.is_err(),
                "prefix of {cut}/{} bytes (shards={shards}) restored",
                bytes.len()
            );
        }
        // The full blob still restores: the sweep did not mutate it.
        assert!(ShardedController::restore(&cp).is_ok());
    }
}

#[test]
fn bit_flip_sweep_never_panics_and_leaves_restored_controllers_usable() {
    let cp = seeded_checkpoint(2);
    let bytes = cp.as_bytes();
    let mut survived = 0u32;
    for pos in 0..bytes.len() {
        let mut damaged = bytes.to_vec();
        damaged[pos] ^= 1 << (pos % 8);
        match ShardedController::restore(&ControllerCheckpoint::from_bytes(damaged)) {
            // The format has no checksum footer, so a flip inside a
            // value payload can decode to a *different but structurally
            // valid* state. That is in-contract; what the strict decoder
            // guarantees is that such a controller is fully usable.
            Ok(ctl) => {
                survived += 1;
                let _ = ctl.stats();
                assert!(ShardedController::restore(&ctl.snapshot()).is_ok());
            }
            Err(
                CheckpointError::BadMagic
                | CheckpointError::UnsupportedVersion(_)
                | CheckpointError::Truncated { .. }
                | CheckpointError::Corrupt { .. }
                | CheckpointError::Invalid(_)
                | CheckpointError::UnknownPolicy { .. }
                | CheckpointError::PolicyMismatch { .. },
            ) => {}
        }
    }
    // The decoder must still be strict: structural damage dominates.
    assert!(
        u64::from(survived) < bytes.len() as u64 / 2,
        "{survived}/{} flips decoded",
        bytes.len()
    );
}

#[test]
fn version_confusion_is_rejected_with_the_offending_byte() {
    let cp = seeded_checkpoint(1);
    // Format versions older than the v3 compatibility floor, a future
    // version, and junk: all must name the version they saw, not
    // misparse the body.
    for bad in [0u8, 1, 2, 5, 99] {
        let mut bytes = cp.as_bytes().to_vec();
        bytes[4] = bad;
        let err =
            ReactiveController::restore(&ControllerCheckpoint::from_bytes(bytes)).unwrap_err();
        assert_eq!(err, CheckpointError::UnsupportedVersion(bad));
    }
}

#[test]
fn cross_format_confusion_is_bad_magic_both_ways() {
    // A trace stream handed to the checkpoint decoder.
    let records = Scenario::UniformRandom { branches: 16 }.generate(200, 3);
    let mut trace_bytes = Vec::new();
    rsc_trace::io::write_trace(&mut trace_bytes, records).unwrap();
    let err =
        ReactiveController::restore(&ControllerCheckpoint::from_bytes(trace_bytes)).unwrap_err();
    assert_eq!(err, CheckpointError::BadMagic);

    // A checkpoint handed to the trace decoder.
    let cp = seeded_checkpoint(1);
    assert!(matches!(
        rsc_trace::io::read_trace(&mut cp.as_bytes()),
        Err(rsc_trace::io::TraceIoError::BadMagic)
    ));
}

#[test]
fn empty_and_trailing_garbage_blobs_are_typed() {
    assert!(matches!(
        ReactiveController::restore(&ControllerCheckpoint::from_bytes(Vec::new())),
        Err(CheckpointError::Truncated { .. })
    ));
    let mut bytes = seeded_checkpoint(1).into_bytes();
    bytes.extend_from_slice(b"extra");
    assert!(matches!(
        ReactiveController::restore(&ControllerCheckpoint::from_bytes(bytes)),
        Err(CheckpointError::Corrupt { .. })
    ));
}

/// A torn write of the checkpoint file itself (the crash window of a
/// naive `fs::write`) is always caught by the strict decoder, which is
/// what makes write-to-temp-then-rename sufficient for crash safety.
#[test]
fn torn_file_writes_are_detected_and_atomic_rename_avoids_them() {
    let dir = std::env::temp_dir().join("rsc_checkpoint_faults");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tenant-7.rsck");
    let cp = seeded_checkpoint(2);

    // Crash mid-write: only a prefix reached the disk.
    std::fs::write(&path, &cp.as_bytes()[..cp.len() / 2]).unwrap();
    let torn = std::fs::read(&path).unwrap();
    assert!(ShardedController::restore(&ControllerCheckpoint::from_bytes(torn)).is_err());

    // The required discipline: finish the bytes in a temp file, then
    // rename over the final path. Readers see the old blob or the new
    // blob, never the torn middle state.
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, cp.as_bytes()).unwrap();
    std::fs::rename(&tmp, &path).unwrap();
    let clean = std::fs::read(&path).unwrap();
    let restored = ShardedController::restore(&ControllerCheckpoint::from_bytes(clean)).unwrap();
    assert_eq!(
        restored.snapshot(),
        cp,
        "restore round-trips bit-identically"
    );

    // A crash between the temp write and the rename leaves a stale
    // `.tmp` orphan; the final path is untouched and still restores.
    std::fs::write(&tmp, &cp.as_bytes()[..3]).unwrap();
    let survivor = std::fs::read(&path).unwrap();
    assert!(ShardedController::restore(&ControllerCheckpoint::from_bytes(survivor)).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}
