//! Failure injection: adversarial workloads designed to break a
//! speculation controller, and the defenses the paper builds in.

use rsc_control::{
    ControllerParams, EvictionMode, MonitorPolicy, ReactiveController, Revisit, SpecDecision,
};
use rsc_trace::{BranchId, BranchRecord};

fn tiny_params() -> ControllerParams {
    ControllerParams {
        monitor_period: 100,
        monitor_policy: MonitorPolicy::FixedWindow,
        monitor_sample_rate: 1,
        selection_threshold: 0.995,
        eviction: EvictionMode::Counter {
            up: 50,
            down: 1,
            threshold: 500,
        },
        revisit: Revisit::After(1_000),
        oscillation_limit: Some(5),
        optimization_latency: 0,
    }
}

fn drive(
    ctl: &mut ReactiveController,
    branch: u32,
    outcomes: impl IntoIterator<Item = bool>,
    instr: &mut u64,
) -> (u64, u64) {
    let mut correct = 0;
    let mut incorrect = 0;
    for taken in outcomes {
        *instr += 5;
        match ctl.observe(&BranchRecord {
            branch: BranchId::new(branch),
            taken,
            instr: *instr,
        }) {
            SpecDecision::Correct => correct += 1,
            SpecDecision::Incorrect => incorrect += 1,
            SpecDecision::NotSpeculated => {}
        }
    }
    (correct, incorrect)
}

/// A branch engineered to oscillate forever: perfectly biased long enough
/// to be selected, then perfectly reversed long enough to be evicted, on
/// repeat. The oscillation cap must bound the damage.
#[test]
fn oscillation_storm_is_bounded() {
    let mut ctl = ReactiveController::builder(tiny_params()).build().unwrap();
    let mut instr = 0;
    let mut total_incorrect = 0;
    for cycle in 0..100 {
        let phase = cycle % 2 == 0;
        let (_, inc) = drive(&mut ctl, 0, std::iter::repeat_n(phase, 600), &mut instr);
        total_incorrect += inc;
    }
    // 5 allowed optimizations x ~10 misspecs to evict each: damage must be
    // bounded by the cap, not grow with the number of phases.
    assert!(ctl.is_disabled(BranchId::new(0)));
    assert_eq!(ctl.entries(BranchId::new(0)), 5);
    assert!(
        total_incorrect < 5 * 30,
        "incorrect {total_incorrect} should be bounded by the cap"
    );
}

/// Without the cap, the same storm generates unbounded re-optimization.
#[test]
fn oscillation_storm_without_cap_keeps_reoptimizing() {
    let params = ControllerParams {
        oscillation_limit: None,
        ..tiny_params()
    };
    let mut ctl = ReactiveController::builder(params).build().unwrap();
    let mut instr = 0;
    for cycle in 0..100 {
        let phase = cycle % 2 == 0;
        drive(&mut ctl, 0, std::iter::repeat_n(phase, 600), &mut instr);
    }
    let entries = ctl.entries(BranchId::new(0));
    let evictions = ctl.evictions(BranchId::new(0));
    assert!(entries > 10, "entries {entries}");
    // Every entry except possibly the still-open last one gets evicted.
    assert!(
        entries - evictions <= 1,
        "entries {entries} vs evictions {evictions}"
    );
}

/// A branch that stays just under the eviction engagement rate: the
/// controller should tolerate it forever (that is the point of the
/// hysteresis), and misspeculation stays proportional to its true rate.
#[test]
fn sub_threshold_noise_is_not_evicted() {
    let mut ctl = ReactiveController::builder(tiny_params()).build().unwrap();
    let mut instr = 0;
    // Select it first.
    drive(&mut ctl, 0, std::iter::repeat_n(true, 100), &mut instr);
    // 1% misspeculation, far below the ~2% engagement rate.
    let outcomes = (0..50_000).map(|i| i % 100 != 0);
    let (correct, incorrect) = drive(&mut ctl, 0, outcomes, &mut instr);
    assert_eq!(ctl.evictions(BranchId::new(0)), 0);
    assert!(correct > 49_000);
    assert_eq!(incorrect, 500);
}

/// A burst of misspeculations shorter than the hysteresis distance must
/// not evict; a sustained reversal must.
#[test]
fn burst_tolerance_vs_sustained_reversal() {
    let mut ctl = ReactiveController::builder(tiny_params()).build().unwrap();
    let mut instr = 0;
    drive(&mut ctl, 0, std::iter::repeat_n(true, 100), &mut instr);
    // Burst of 9 misspecs (9 * 50 = 450 < 500), then recovery.
    drive(&mut ctl, 0, std::iter::repeat_n(false, 9), &mut instr);
    drive(&mut ctl, 0, std::iter::repeat_n(true, 1_000), &mut instr);
    assert_eq!(ctl.evictions(BranchId::new(0)), 0, "short burst tolerated");
    // Sustained reversal: evicted promptly.
    drive(&mut ctl, 0, std::iter::repeat_n(false, 50), &mut instr);
    assert_eq!(ctl.evictions(BranchId::new(0)), 1);
}

/// Alternating outcomes look 50%-biased at every window size the monitor
/// uses; the controller must never select such a branch.
#[test]
fn alternating_branch_is_never_selected() {
    let mut ctl = ReactiveController::builder(tiny_params()).build().unwrap();
    let mut instr = 0;
    let outcomes = (0..100_000).map(|i| i % 2 == 0);
    let (correct, incorrect) = drive(&mut ctl, 0, outcomes, &mut instr);
    assert_eq!(ctl.entries(BranchId::new(0)), 0);
    assert_eq!(correct + incorrect, 0);
}

/// Thousands of one-shot branches (executed once each) must neither be
/// speculated nor blow up controller memory/state.
#[test]
fn cold_branch_flood() {
    let mut ctl = ReactiveController::builder(tiny_params()).build().unwrap();
    let mut instr = 0;
    for b in 0..50_000u32 {
        instr += 5;
        let d = ctl.observe(&BranchRecord {
            branch: BranchId::new(b),
            taken: true,
            instr,
        });
        assert_eq!(d, SpecDecision::NotSpeculated);
    }
    let s = ctl.stats();
    assert_eq!(s.touched, 50_000);
    assert_eq!(s.entered_biased, 0);
    assert_eq!(s.correct + s.incorrect, 0);
}

/// A branch that reverses during the selection latency window: the
/// controller deploys stale speculation, then must recover through the
/// normal eviction path rather than wedging.
#[test]
fn reversal_during_deployment_latency() {
    let params = ControllerParams {
        optimization_latency: 10_000,
        ..tiny_params()
    };
    let mut ctl = ReactiveController::builder(params).build().unwrap();
    let mut instr = 0;
    // Selected as taken at instr ~500.
    drive(&mut ctl, 0, std::iter::repeat_n(true, 100), &mut instr);
    // Behavior reverses while the optimizer is still compiling.
    drive(&mut ctl, 0, std::iter::repeat_n(false, 1_000), &mut instr);
    // Deployment has happened by now (instr >> deadline); the stale code
    // misspeculates, the counter trips, and the branch is evicted.
    let (_, incorrect) = drive(&mut ctl, 0, std::iter::repeat_n(false, 2_000), &mut instr);
    assert!(incorrect > 0, "stale speculation must be observed");
    assert_eq!(ctl.evictions(BranchId::new(0)), 1);
    // Re-monitored and re-selected in the new direction.
    drive(&mut ctl, 0, std::iter::repeat_n(false, 3_000), &mut instr);
    let (correct, _) = drive(&mut ctl, 0, std::iter::repeat_n(false, 1_000), &mut instr);
    assert!(
        correct > 0,
        "controller must re-learn the reversed direction"
    );
}

/// Interleaving many branches does not leak state across them.
#[test]
fn no_cross_branch_interference() {
    let mut ctl = ReactiveController::builder(tiny_params()).build().unwrap();
    let mut instr = 0;
    // Branch 0 perfectly biased, branch 1 perfectly anti-biased, branch 2
    // random-ish; interleaved.
    for i in 0..30_000u64 {
        instr += 5;
        ctl.observe(&BranchRecord {
            branch: BranchId::new(0),
            taken: true,
            instr,
        });
        instr += 5;
        ctl.observe(&BranchRecord {
            branch: BranchId::new(1),
            taken: false,
            instr,
        });
        instr += 5;
        ctl.observe(&BranchRecord {
            branch: BranchId::new(2),
            taken: (i * 2654435761) % 97 < 48,
            instr,
        });
    }
    assert_eq!(ctl.entries(BranchId::new(0)), 1);
    assert_eq!(ctl.entries(BranchId::new(1)), 1);
    assert_eq!(ctl.entries(BranchId::new(2)), 0);
    assert_eq!(ctl.evictions(BranchId::new(0)), 0);
    assert_eq!(ctl.evictions(BranchId::new(1)), 0);
}
