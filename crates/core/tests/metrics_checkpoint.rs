//! Telemetry across checkpoint/restore: the metrics registry's histogram
//! state (and the interval bookkeeping behind it) must survive a
//! snapshot/restore round trip, and a restored controller that replays
//! the tail of a trace must end with exactly the registry a straight run
//! produces. Checkpoint save/restore notifications flow to sinks without
//! ever altering the serialized bytes.

use rsc_control::prelude::*;
use rsc_control::resilience::{
    BreakerConfig, DeployerSpec, FaultMode, FaultScope, FaultSpec, RetryPolicy,
};
use rsc_trace::rng::SplitMix64;
use rsc_trace::{BranchId, BranchRecord};
use std::sync::Arc;

fn params() -> ControllerParams {
    let mut p = ControllerParams::scaled();
    p.monitor_period = 80;
    p.eviction = rsc_control::EvictionMode::Counter {
        up: 50,
        down: 1,
        threshold: 300,
    };
    p.revisit = rsc_control::Revisit::After(1_000);
    p.optimization_latency = 60;
    p
}

fn config(seed: u64) -> ResilienceConfig {
    ResilienceConfig {
        deployer: DeployerSpec::Faulty(FaultSpec {
            seed,
            mode: FaultMode::FixedRate { per_mille: 300 },
            scope: FaultScope::All,
            wasted: 80,
        }),
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff: 100,
            max_backoff: 800,
        },
        breaker: Some(BreakerConfig {
            bucket_events: 200,
            buckets: 4,
            open_threshold: 0.08,
            close_threshold: 0.02,
            cooldown_events: 1_500,
            probe_events: 800,
            mass_evict_top_k: 2,
        }),
    }
}

/// Phase-flipping multi-branch workload that populates every histogram.
fn stream(seed: u64, n: u64) -> Vec<BranchRecord> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(n as usize);
    let mut instr = 0u64;
    for i in 0..n {
        let branch = (rng.next_u64() % 5) as u32;
        let phase = (i / 600).is_multiple_of(2);
        let taken = if branch == 4 {
            rng.next_u64().is_multiple_of(2)
        } else {
            (rng.next_u64() % 100 < 97) == phase
        };
        instr += 1 + rng.next_u64() % 6;
        out.push(BranchRecord {
            branch: BranchId::new(branch),
            taken,
            instr,
        });
    }
    out
}

fn build(metrics: bool, seed: u64) -> ReactiveController {
    let mut b = ReactiveController::builder(params()).resilience(config(seed));
    if metrics {
        b = b.metrics();
    }
    b.build().unwrap()
}

#[test]
fn metrics_survive_restore_and_resume_equals_straight_run() {
    let recs = stream(11, 8_000);
    let mut straight = build(true, 11);
    for r in &recs {
        straight.observe(r);
    }

    for split in [1, recs.len() / 3, recs.len() / 2, recs.len() - 1] {
        let mut first = build(true, 11);
        for r in &recs[..split] {
            first.observe(r);
        }
        let cp = first.snapshot();
        let mut resumed = ReactiveController::restore(&cp).unwrap();
        // The registry is part of the restored state, not rebuilt empty.
        assert!(resumed.metrics().is_some(), "split={split}");
        assert_eq!(
            resumed.metrics().unwrap().render_prometheus(),
            first.metrics().unwrap().render_prometheus(),
            "restored registry differs at split={split}"
        );
        for r in &recs[split..] {
            resumed.observe(r);
        }
        assert_eq!(resumed.stats(), straight.stats(), "split={split}");
        // The full exposition — counters, gauges, and every histogram
        // bucket — is a pure function of the event stream, regardless of
        // where the run was cut.
        assert_eq!(
            resumed.metrics().unwrap().render_prometheus(),
            straight.metrics().unwrap().render_prometheus(),
            "split={split}"
        );
        assert_eq!(resumed.snapshot(), straight.snapshot(), "split={split}");
    }
}

#[test]
fn telemetry_free_controller_round_trips_without_a_registry() {
    let recs = stream(5, 3_000);
    let mut ctl = build(false, 5);
    for r in &recs {
        ctl.observe(r);
    }
    let restored = ReactiveController::restore(&ctl.snapshot()).unwrap();
    assert!(restored.metrics().is_none());
    assert_eq!(restored.stats(), ctl.stats());
}

#[test]
fn checkpoint_events_reach_the_sink_but_not_the_bytes() {
    let recs = stream(3, 2_000);
    let sink = Arc::new(VecSink::new());
    let mut ctl = ReactiveController::builder(params())
        .resilience(config(3))
        .metrics()
        .event_sink(sink.clone())
        .build()
        .unwrap();
    for r in &recs {
        ctl.observe(r);
    }

    let before = sink.len();
    let cp1 = ctl.snapshot();
    let cp2 = ctl.snapshot();
    // Snapshotting is observationally transparent: emitting the saved
    // event must not feed back into the serialized state.
    assert_eq!(cp1, cp2);
    let saves: Vec<_> = sink
        .snapshot()
        .into_iter()
        .skip(before)
        .filter_map(|e| match e {
            ObsEvent::CheckpointSaved { events, bytes } => Some((events, bytes)),
            _ => None,
        })
        .collect();
    assert_eq!(
        saves,
        vec![
            (ctl.stats().events, cp1.len() as u64),
            (ctl.stats().events, cp1.len() as u64),
        ]
    );

    // Sinks are not serialized; `restore_with_sink` re-attaches one and
    // announces the restore.
    let restored = ReactiveController::restore(&cp1).unwrap();
    assert!(restored.event_sink().is_none());

    let sink2 = Arc::new(VecSink::new());
    let restored = ReactiveController::restore_with_sink(&cp1, sink2.clone()).unwrap();
    assert!(restored.event_sink().is_some());
    assert_eq!(
        sink2.take(),
        vec![ObsEvent::CheckpointRestored {
            events: ctl.stats().events,
            bytes: cp1.len() as u64,
        }]
    );
    assert_eq!(restored.stats(), ctl.stats());
}

#[test]
fn sink_only_telemetry_serializes_as_absent() {
    // A sink without a registry has nothing serializable: the restored
    // controller carries no telemetry at all.
    let sink = Arc::new(VecSink::new());
    let mut ctl = ReactiveController::builder(params())
        .event_sink(sink)
        .build()
        .unwrap();
    for r in &stream(7, 1_000) {
        ctl.observe(r);
    }
    let restored = ReactiveController::restore(&ctl.snapshot()).unwrap();
    assert!(restored.metrics().is_none());
    assert!(restored.event_sink().is_none());
    assert_eq!(restored.stats(), ctl.stats());
}
