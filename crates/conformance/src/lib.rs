//! # rsc-conformance — differential conformance harness
//!
//! The standing safety net for every performance change to
//! [`rsc_control`]: the optimized [`ReactiveController`] is fuzzed in
//! lockstep against the golden
//! [`ReferenceController`](rsc_control::ReferenceController) — a naive,
//! obviously-correct transliteration of the paper's three-state FSM —
//! over adversarial traces from [`rsc_trace::adversary`]. Both the
//! per-event `observe` path and the chunked `observe_chunk` fast path
//! (at arbitrary chunk boundaries) must produce identical decision
//! streams, transition logs, statistics, and per-branch states.
//!
//! When a divergence is found, [`shrink`](shrink::shrink) minimizes the
//! failing trace and [`Counterexample`](artifact::Counterexample) writes
//! it as a replayable `.json` artifact. The harness validates itself by
//! injecting known [`Fault`](fault::Fault)s and asserting they are
//! caught and shrunk.
//!
//! ## Quick start
//!
//! ```
//! use rsc_conformance::campaign::{run, CampaignConfig};
//!
//! let report = run(&CampaignConfig {
//!     seed_start: 0,
//!     seed_end: 1,
//!     events: 500,
//!     fault: None,
//! });
//! assert!(report.counterexample.is_none(), "controller conforms");
//! ```
//!
//! [`ReactiveController`]: rsc_control::ReactiveController

pub mod artifact;
pub mod campaign;
pub mod differ;
pub mod fault;
pub mod json;
pub mod shrink;

pub use artifact::{params_from_json, params_to_json, ArtifactError, Counterexample};
pub use campaign::{
    run, run_policies, CampaignConfig, CampaignReport, PolicyCampaignReport, PolicyDivergence,
};
pub use differ::{run_case, run_policy_case, CaseSpec, Divergence, Mode};
pub use fault::Fault;
pub use shrink::{shrink, shrink_by};
