//! Lockstep differential execution of the optimized controller against
//! the golden reference.
//!
//! A [`CaseSpec`] names the subject's parameters, the reference's
//! parameters (identical unless a [`Fault`](crate::fault::Fault) was
//! injected), and the execution [`Mode`]. [`run_case`] then feeds one
//! trace to both controllers and checks, in order:
//!
//! 1. the per-event [`SpecDecision`] stream (per-event mode) or the
//!    per-chunk [`ChunkSummary`] against the sum of the reference's
//!    per-event decisions (chunked mode);
//! 2. final [`ControlStats`];
//! 3. exact per-kind transition counts and the full transition event log;
//! 4. a [`BranchSnapshot`] for every branch the trace touched.
//!
//! The first mismatch aborts the run with a [`Divergence`] carrying the
//! event index (for the shrinker) and a human-readable detail string
//! (for the artifact).

use rsc_control::{
    builtin_policy, ChunkSummary, ControllerParams, ReactiveController, ReferenceController,
    ResilienceConfig, ShardedController, SpecDecision, TransitionKind,
};
use rsc_trace::rng::Xoshiro256;
use rsc_trace::{BranchId, BranchRecord};

/// Largest chunk the chunked mode will slice off a trace. Small enough
/// that boundaries land inside monitoring windows, pending-deployment
/// intervals, and eviction bursts many times per trace.
pub const MAX_CHUNK: u64 = 13;

/// How the subject controller consumes the trace. The reference always
/// consumes it one event at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// `ReactiveController::observe`, one record at a time.
    PerEvent,
    /// `ReactiveController::observe_chunk` over chunks of random length
    /// `1..=MAX_CHUNK`, derived deterministically from `seed`.
    Chunked {
        /// Seed for the chunk-length stream.
        seed: u64,
    },
    /// `ShardedController::observe_chunk` with `shards` worker shards,
    /// over the same random chunk layout as [`Mode::Chunked`]. Checks
    /// everything the sharded engine promises to merge bit-identically
    /// (summaries, stats, per-kind counts, snapshots); the ordered
    /// transition log is shard-local by design and is not compared.
    Sharded {
        /// Worker shard count (≥ 1).
        shards: usize,
        /// Seed for the chunk-length stream.
        seed: u64,
    },
}

impl Mode {
    /// Stable name for artifacts and progress output.
    pub fn name(&self) -> &'static str {
        match self {
            Mode::PerEvent => "per-event",
            Mode::Chunked { .. } => "chunked",
            Mode::Sharded { .. } => "sharded",
        }
    }
}

/// One differential test case: who runs against whom, and how.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseSpec {
    /// Parameters of the optimized controller under test.
    pub subject: ControllerParams,
    /// Parameters of the golden reference (the truth).
    pub reference: ControllerParams,
    /// How the subject consumes the trace.
    pub mode: Mode,
    /// Resilience layer attached to *both* controllers (each gets its own
    /// instance; the layer is deterministic, so identical configs keep
    /// the pair in lockstep). `None` runs the layerless legacy path.
    pub resilience: Option<ResilienceConfig>,
}

/// A detected behavioral difference between subject and reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the first event at (or by) which the difference was
    /// observable; `trace.len()` for end-of-trace state differences. The
    /// shrinker uses this to truncate.
    pub index: usize,
    /// Human-readable description of what differed.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "divergence at event {}: {}", self.index, self.detail)
    }
}

/// Runs one differential case over `trace`.
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
///
/// # Panics
///
/// Panics if either parameter set fails validation — campaign parameters
/// are constructed from validated presets.
pub fn run_case(spec: &CaseSpec, trace: &[BranchRecord]) -> Result<(), Divergence> {
    if let Mode::Sharded { shards, seed } = spec.mode {
        return run_sharded_case(spec, trace, shards, seed);
    }
    let mut subject = match spec.resilience {
        None => ReactiveController::builder(spec.subject)
            .build()
            .expect("subject params validate"),
        Some(c) => ReactiveController::builder(spec.subject)
            .resilience(c)
            .build()
            .expect("subject params validate"),
    };
    let mut reference = match spec.resilience {
        None => ReferenceController::new(spec.reference).expect("reference params validate"),
        Some(c) => ReferenceController::with_resilience(spec.reference, c)
            .expect("reference params validate"),
    };

    match spec.mode {
        Mode::PerEvent => {
            for (i, r) in trace.iter().enumerate() {
                let got = subject.observe(r);
                let want = reference.observe(r);
                if got != want {
                    return Err(Divergence {
                        index: i,
                        detail: format!(
                            "decision mismatch on branch {}: subject {got:?}, reference {want:?}",
                            r.branch.index()
                        ),
                    });
                }
            }
        }
        Mode::Chunked { seed } => {
            let mut sizes = Xoshiro256::seed_from(seed);
            let mut start = 0usize;
            while start < trace.len() {
                let len = (1 + sizes.gen_range(MAX_CHUNK)) as usize;
                let end = (start + len).min(trace.len());
                let got = subject.observe_chunk(&trace[start..end]);
                let mut want = ChunkSummary::default();
                for r in &trace[start..end] {
                    let d = reference.observe(r);
                    want.events += 1;
                    want.speculated += u64::from(d.speculated());
                    want.correct += u64::from(d == SpecDecision::Correct);
                    want.incorrect += u64::from(d == SpecDecision::Incorrect);
                }
                if got != want {
                    return Err(Divergence {
                        index: end - 1,
                        detail: format!(
                            "chunk summary mismatch over events {start}..{end}: \
                             subject {got:?}, reference {want:?}"
                        ),
                    });
                }
                start = end;
            }
        }
        Mode::Sharded { .. } => unreachable!("handled by run_sharded_case above"),
    }

    compare_final_state(&subject, &reference, trace).map_err(|detail| Divergence {
        index: trace.len(),
        detail,
    })
}

/// The sharded lockstep: the subject is a [`ShardedController`], fed the
/// same random chunk layout as [`Mode::Chunked`]; the reference stays
/// per-event. The sharded engine rejects the resilience layer, so a
/// [`CaseSpec`] pairing the two is a harness bug.
fn run_sharded_case(
    spec: &CaseSpec,
    trace: &[BranchRecord],
    shards: usize,
    seed: u64,
) -> Result<(), Divergence> {
    assert!(
        spec.resilience.is_none(),
        "sharded mode does not compose with the resilience layer"
    );
    let mut subject = ReactiveController::builder(spec.subject)
        .shards(shards)
        .build_sharded()
        .expect("subject params validate");
    let mut reference =
        ReferenceController::new(spec.reference).expect("reference params validate");

    let mut sizes = Xoshiro256::seed_from(seed);
    let mut start = 0usize;
    while start < trace.len() {
        let len = (1 + sizes.gen_range(MAX_CHUNK)) as usize;
        let end = (start + len).min(trace.len());
        let got = subject.observe_chunk(&trace[start..end]);
        let mut want = ChunkSummary::default();
        for r in &trace[start..end] {
            let d = reference.observe(r);
            want.events += 1;
            want.speculated += u64::from(d.speculated());
            want.correct += u64::from(d == SpecDecision::Correct);
            want.incorrect += u64::from(d == SpecDecision::Incorrect);
        }
        if got != want {
            return Err(Divergence {
                index: end - 1,
                detail: format!(
                    "sharded ({shards}) chunk summary mismatch over events {start}..{end}: \
                     subject {got:?}, reference {want:?}"
                ),
            });
        }
        start = end;
    }

    compare_sharded_final_state(&subject, &reference, trace).map_err(|detail| Divergence {
        index: trace.len(),
        detail,
    })
}

/// Final-state comparison for the sharded engine: everything the
/// deterministic merge covers. The ordered transition log is skipped —
/// `event_index` is a shard-local ordinal, which is per-shard semantics,
/// not a divergence.
fn compare_sharded_final_state(
    subject: &ShardedController,
    reference: &ReferenceController,
    trace: &[BranchRecord],
) -> Result<(), String> {
    let got = subject.stats();
    let want = reference.stats();
    if got != want {
        return Err(format!(
            "final stats mismatch: subject {got:?}, reference {want:?}"
        ));
    }

    for kind in TransitionKind::ALL {
        let got = subject.transition_count(kind);
        let want = reference.transition_count(kind);
        if got != want {
            return Err(format!(
                "transition count mismatch for {kind:?}: subject {got}, reference {want}"
            ));
        }
    }

    let max_branch = trace.iter().map(|r| r.branch.index()).max().unwrap_or(0);
    for b in 0..=max_branch {
        let id = BranchId::new(b as u32);
        let got = subject.branch_snapshot(id);
        let want = reference.branch_snapshot(id);
        if got != want {
            return Err(format!(
                "branch {b} snapshot mismatch: subject {got:?}, reference {want:?}"
            ));
        }
    }
    Ok(())
}

/// One differential case over the policy zoo: the subject consumes the
/// trace via `mode` under the named [`Policy`](rsc_control::Policy); the
/// reference is the *same policy* consumed one event at a time (the
/// per-event path is the semantic definition every fast path must
/// match). For `"paper-fsm"` the reference is stronger — the golden
/// [`ReferenceController`] — so the paper policy is checked against an
/// independent implementation, not just against itself.
///
/// `subject_params` and `reference_params` are identical in conformance
/// mode; a campaign self-test passes faulted subject parameters.
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
///
/// # Panics
///
/// Panics if `policy` is not a builtin id or the parameters fail
/// validation.
pub fn run_policy_case(
    policy: &'static str,
    subject_params: ControllerParams,
    reference_params: ControllerParams,
    mode: Mode,
    trace: &[BranchRecord],
) -> Result<(), Divergence> {
    if policy == "paper-fsm" {
        return run_case(
            &CaseSpec {
                subject: subject_params,
                reference: reference_params,
                mode,
                resilience: None,
            },
            trace,
        );
    }
    let build = |params: ControllerParams| {
        ReactiveController::builder(params)
            .policy_arc(builtin_policy(policy).expect("builtin policy id"))
            .build()
            .expect("params validate")
    };
    let mut reference = build(reference_params);

    match mode {
        Mode::PerEvent => {
            let mut subject = build(subject_params);
            for (i, r) in trace.iter().enumerate() {
                let got = subject.observe(r);
                let want = reference.observe(r);
                if got != want {
                    return Err(Divergence {
                        index: i,
                        detail: format!(
                            "[{policy}] decision mismatch on branch {}: \
                             subject {got:?}, reference {want:?}",
                            r.branch.index()
                        ),
                    });
                }
            }
            compare_policy_final_state(policy, &subject, &reference, trace)
        }
        Mode::Chunked { seed } => {
            let mut subject = build(subject_params);
            let mut sizes = Xoshiro256::seed_from(seed);
            let mut start = 0usize;
            while start < trace.len() {
                let len = (1 + sizes.gen_range(MAX_CHUNK)) as usize;
                let end = (start + len).min(trace.len());
                let got = subject.observe_chunk(&trace[start..end]);
                let want = reference_summary(&mut reference, &trace[start..end]);
                if got != want {
                    return Err(Divergence {
                        index: end - 1,
                        detail: format!(
                            "[{policy}] chunk summary mismatch over events {start}..{end}: \
                             subject {got:?}, reference {want:?}"
                        ),
                    });
                }
                start = end;
            }
            compare_policy_final_state(policy, &subject, &reference, trace)
        }
        Mode::Sharded { shards, seed } => {
            let mut subject = ReactiveController::builder(subject_params)
                .policy_arc(builtin_policy(policy).expect("builtin policy id"))
                .shards(shards)
                .build_sharded()
                .expect("params validate");
            let mut sizes = Xoshiro256::seed_from(seed);
            let mut start = 0usize;
            while start < trace.len() {
                let len = (1 + sizes.gen_range(MAX_CHUNK)) as usize;
                let end = (start + len).min(trace.len());
                let got = subject.observe_chunk(&trace[start..end]);
                let want = reference_summary(&mut reference, &trace[start..end]);
                if got != want {
                    return Err(Divergence {
                        index: end - 1,
                        detail: format!(
                            "[{policy}] sharded ({shards}) chunk summary mismatch over \
                             events {start}..{end}: subject {got:?}, reference {want:?}"
                        ),
                    });
                }
                start = end;
            }
            compare_policy_sharded_final_state(policy, &subject, &reference, trace).map_err(
                |detail| Divergence {
                    index: trace.len(),
                    detail,
                },
            )
        }
    }
}

/// Sums per-event reference decisions into the summary a chunked subject
/// must report.
fn reference_summary(reference: &mut ReactiveController, recs: &[BranchRecord]) -> ChunkSummary {
    let mut want = ChunkSummary::default();
    for r in recs {
        let d = reference.observe(r);
        want.events += 1;
        want.speculated += u64::from(d.speculated());
        want.correct += u64::from(d == SpecDecision::Correct);
        want.incorrect += u64::from(d == SpecDecision::Incorrect);
    }
    want
}

/// Final-state comparison for a same-policy pair of plain controllers:
/// stats, the full transition log, per-branch snapshots, and — the
/// strongest check — bit-identical checkpoint bytes.
fn compare_policy_final_state(
    policy: &str,
    subject: &ReactiveController,
    reference: &ReactiveController,
    trace: &[BranchRecord],
) -> Result<(), Divergence> {
    let err = |detail: String| Divergence {
        index: trace.len(),
        detail: format!("[{policy}] {detail}"),
    };
    if subject.stats() != reference.stats() {
        return Err(err(format!(
            "final stats mismatch: subject {:?}, reference {:?}",
            subject.stats(),
            reference.stats()
        )));
    }
    if subject.transitions() != reference.transitions() {
        return Err(err("transition log mismatch".to_string()));
    }
    let max_branch = trace.iter().map(|r| r.branch.index()).max().unwrap_or(0);
    for b in 0..=max_branch {
        let id = BranchId::new(b as u32);
        if subject.branch_snapshot(id) != reference.branch_snapshot(id) {
            return Err(err(format!("branch {b} snapshot mismatch")));
        }
    }
    if subject.snapshot() != reference.snapshot() {
        return Err(err("checkpoint bytes differ".to_string()));
    }
    Ok(())
}

/// Final-state comparison for a sharded subject against a same-policy
/// per-event reference — everything the deterministic merge covers.
fn compare_policy_sharded_final_state(
    policy: &str,
    subject: &ShardedController,
    reference: &ReactiveController,
    trace: &[BranchRecord],
) -> Result<(), String> {
    if subject.stats() != reference.stats() {
        return Err(format!(
            "[{policy}] final stats mismatch: subject {:?}, reference {:?}",
            subject.stats(),
            reference.stats()
        ));
    }
    for kind in TransitionKind::ALL {
        let got = subject.transition_count(kind);
        let want = reference.transition_log().count(kind);
        if got != want {
            return Err(format!(
                "[{policy}] transition count mismatch for {kind:?}: \
                 subject {got}, reference {want}"
            ));
        }
    }
    let max_branch = trace.iter().map(|r| r.branch.index()).max().unwrap_or(0);
    for b in 0..=max_branch {
        let id = BranchId::new(b as u32);
        if subject.branch_snapshot(id) != reference.branch_snapshot(id) {
            return Err(format!("[{policy}] branch {b} snapshot mismatch"));
        }
    }
    Ok(())
}

/// Compares everything that should be identical once the trace is fully
/// consumed. Returns a description of the first mismatch.
fn compare_final_state(
    subject: &ReactiveController,
    reference: &ReferenceController,
    trace: &[BranchRecord],
) -> Result<(), String> {
    let got = subject.stats();
    let want = reference.stats();
    if got != want {
        return Err(format!(
            "final stats mismatch: subject {got:?}, reference {want:?}"
        ));
    }

    for kind in TransitionKind::ALL {
        let got = subject.transition_log().count(kind);
        let want = reference.transition_count(kind);
        if got != want {
            return Err(format!(
                "transition count mismatch for {kind:?}: subject {got}, reference {want}"
            ));
        }
    }
    if subject.transitions() != reference.transitions() {
        let (got, want) = (subject.transitions(), reference.transitions());
        let i = got
            .iter()
            .zip(want)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| got.len().min(want.len()));
        return Err(format!(
            "transition log mismatch at entry {i}: subject {:?}, reference {:?}",
            got.get(i),
            want.get(i)
        ));
    }

    let max_branch = trace.iter().map(|r| r.branch.index()).max().unwrap_or(0);
    for b in 0..=max_branch {
        let id = BranchId::new(b as u32);
        let got = subject.branch_snapshot(id);
        let want = reference.branch_snapshot(id);
        if got != want {
            return Err(format!(
                "branch {b} snapshot mismatch: subject {got:?}, reference {want:?}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use rsc_trace::Scenario;

    fn tiny() -> ControllerParams {
        let mut p = ControllerParams::scaled();
        p.monitor_period = 10;
        p.eviction = rsc_control::EvictionMode::Counter {
            up: 50,
            down: 1,
            threshold: 100,
        };
        p.revisit = rsc_control::Revisit::After(20);
        p.oscillation_limit = Some(3);
        p.optimization_latency = 0;
        p
    }

    fn conforming(mode: Mode) -> CaseSpec {
        CaseSpec {
            subject: tiny(),
            reference: tiny(),
            mode,
            resilience: None,
        }
    }

    fn storm_config() -> ResilienceConfig {
        use rsc_control::resilience::{
            BreakerConfig, DeployerSpec, FaultMode, FaultScope, FaultSpec, RetryPolicy,
        };
        ResilienceConfig {
            deployer: DeployerSpec::Faulty(FaultSpec {
                seed: 23,
                mode: FaultMode::FixedRate { per_mille: 400 },
                scope: FaultScope::All,
                wasted: 12,
            }),
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: 20,
                max_backoff: 80,
            },
            breaker: Some(BreakerConfig {
                bucket_events: 40,
                buckets: 3,
                open_threshold: 0.12,
                close_threshold: 0.04,
                cooldown_events: 80,
                probe_events: 50,
                mass_evict_top_k: 2,
            }),
        }
    }

    #[test]
    fn identical_params_never_diverge() {
        let trace = Scenario::PhaseFlip {
            branches: 3,
            flip_after: 40,
        }
        .generate(4_000, 17);
        run_case(&conforming(Mode::PerEvent), &trace).unwrap();
        run_case(&conforming(Mode::Chunked { seed: 9 }), &trace).unwrap();
    }

    #[test]
    fn hysteresis_fault_diverges_per_event() {
        let spec = CaseSpec {
            subject: Fault::HysteresisOffByOne.apply(tiny()),
            reference: tiny(),
            mode: Mode::PerEvent,
            resilience: None,
        };
        let trace = Scenario::HysteresisStraddle {
            warmup: 10,
            period: 2,
        }
        .generate(4_000, 3);
        let div = run_case(&spec, &trace).unwrap_err();
        assert!(div.index < trace.len(), "should diverge mid-stream");
    }

    #[test]
    fn monitor_fault_diverges_chunked() {
        let spec = CaseSpec {
            subject: Fault::MonitorWindowOffByOne.apply(tiny()),
            reference: tiny(),
            mode: Mode::Chunked { seed: 5 },
            resilience: None,
        };
        let trace = Scenario::ThresholdOscillator { window: 10 }.generate(4_000, 3);
        run_case(&spec, &trace).unwrap_err();
    }

    #[test]
    fn resilient_pair_never_diverges() {
        // Faults, retries, force-disables, breaker trips, and mass
        // evictions all fire on this workload; the optimized and
        // reference controllers must stay in lockstep through all of it,
        // in both consumption modes.
        let trace = Scenario::PhaseFlip {
            branches: 4,
            flip_after: 60,
        }
        .generate(6_000, 29);
        for mode in [Mode::PerEvent, Mode::Chunked { seed: 3 }] {
            let spec = CaseSpec {
                resilience: Some(storm_config()),
                ..conforming(mode)
            };
            run_case(&spec, &trace).unwrap();
        }
    }

    #[test]
    fn resilient_faulty_subject_still_diverges() {
        // The layer must not mask real controller bugs: an injected
        // off-by-one still produces a divergence under resilience.
        let spec = CaseSpec {
            subject: Fault::HysteresisOffByOne.apply(tiny()),
            reference: tiny(),
            mode: Mode::PerEvent,
            resilience: Some(storm_config()),
        };
        let trace = Scenario::HysteresisStraddle {
            warmup: 10,
            period: 2,
        }
        .generate(4_000, 3);
        run_case(&spec, &trace).unwrap_err();
    }

    #[test]
    fn chunk_layout_is_a_pure_function_of_the_seed() {
        let trace = Scenario::UniformRandom { branches: 6 }.generate(2_000, 8);
        let spec = conforming(Mode::Chunked { seed: 77 });
        assert_eq!(run_case(&spec, &trace), run_case(&spec, &trace));
    }

    #[test]
    fn sharded_lockstep_never_diverges_for_any_shard_count() {
        let trace = Scenario::PhaseFlip {
            branches: 6,
            flip_after: 40,
        }
        .generate(4_000, 17);
        for shards in 1..=8 {
            run_case(&conforming(Mode::Sharded { shards, seed: 9 }), &trace)
                .unwrap_or_else(|d| panic!("{shards} shards: {d}"));
        }
    }

    #[test]
    fn sharded_mode_still_catches_injected_faults() {
        let spec = CaseSpec {
            subject: Fault::HysteresisOffByOne.apply(tiny()),
            reference: tiny(),
            mode: Mode::Sharded { shards: 4, seed: 5 },
            resilience: None,
        };
        let trace = Scenario::HysteresisStraddle {
            warmup: 10,
            period: 2,
        }
        .generate(4_000, 3);
        run_case(&spec, &trace).unwrap_err();
    }
}
