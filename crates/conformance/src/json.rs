//! A minimal JSON value model, writer, and parser.
//!
//! Counterexample artifacts must be replayable files, and this workspace
//! vendors no serialization crates (the build environment has no
//! crates.io access), so we carry the ~300 lines of JSON we need
//! ourselves. The subset is complete for our artifacts: objects, arrays,
//! strings with escapes, `u64` integers, finite `f64`, booleans, and
//! null. Numbers are written with Rust's `Display`, which round-trips
//! `f64` exactly; integers up to `u64::MAX` are kept in a dedicated
//! variant so instruction counts never pass through floating point.
//!
//! # Examples
//!
//! ```
//! use rsc_conformance::json::Json;
//!
//! let v = Json::obj([
//!     ("seed", Json::Int(42)),
//!     ("name", Json::str("phase_flip")),
//! ]);
//! let text = v.to_string();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("seed").and_then(Json::as_u64), Some(42));
//! ```

use std::fmt;

/// A parsed or to-be-written JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (instruction counts, seeds, event indices).
    Int(u64),
    /// Any other finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj<'a>(pairs: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integer (or an integral float
    /// that fits losslessly).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(n) => Some(n),
            Json::Num(x) if (0.0..=9.007_199_254_740_992e15).contains(&x) && x.fract() == 0.0 => {
                Some(x as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(n) => Some(n as f64),
            Json::Num(x) => Some(x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Num(x) => {
                debug_assert!(x.is_finite(), "artifacts never contain non-finite numbers");
                // Ensure the token re-parses as a number even for integral
                // floats (Display prints `1` for 1.0_f64).
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => f.write_fmt(format_args!("{c}"))?,
                    }
                }
                f.write_str("\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A JSON syntax error with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates never appear in our artifacts;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while !matches!(self.bytes.get(self.pos), None | Some(b'"') | Some(b'\\')) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8 in string"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("expected a value"));
        }
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Int(n));
            }
        }
        let x: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !x.is_finite() {
            return Err(self.err("non-finite number"));
        }
        Ok(Json::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_structured_values() {
        let v = Json::obj([
            ("a", Json::Int(u64::MAX)),
            ("b", Json::Num(0.995)),
            ("c", Json::str("quote \" slash \\ nl \n")),
            ("d", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("e", Json::obj([("nested", Json::Int(0))])),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn u64_survives_without_float_roundoff() {
        let n = (1u64 << 60) + 12345;
        let text = Json::Int(n).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(n));
    }

    #[test]
    fn f64_display_roundtrips_exactly() {
        for x in [0.995, 0.1 + 0.2, 1.0 / 3.0, 2.58, 1.0, 1e-300] {
            let text = Json::Num(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn integral_floats_reparse_as_numbers() {
        let text = Json::Num(1.0).to_string();
        assert_eq!(text, "1.0");
        assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn parses_whitespace_and_negatives() {
        let v = Json::parse(" { \"x\" : [ -1.5 , 2 ] } ").unwrap();
        let arr = v.get("x").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(-1.5));
        assert_eq!(arr[1].as_u64(), Some(2));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"\\q\"",
            "1 2",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Json::parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
