//! Seeded faults for validating the harness itself.
//!
//! A differential oracle that has never caught anything is untrustworthy,
//! so the campaign can deliberately perturb the *subject* controller's
//! parameters while the golden reference keeps the true ones. Each fault
//! is a classic off-by-one in one FSM arc; the acceptance suite asserts
//! the fuzzer catches every one of them and shrinks the evidence to a
//! replayable counterexample.
//!
//! The perturbation happens entirely inside this test harness — the
//! production controller carries no fault-injection hooks.

use rsc_control::{ControllerParams, EvictionMode, Revisit};

/// A deliberate off-by-one misconfiguration of the subject controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Hysteresis counter evicts one step early (`threshold − 1`).
    HysteresisOffByOne,
    /// Unbiased branches wait one extra execution before re-monitoring.
    RevisitOffByOne,
    /// The monitor classifies after one extra execution.
    MonitorWindowOffByOne,
    /// The oscillation cap allows one extra entry before disabling.
    OscillationCapOffByOne,
}

impl Fault {
    /// Every known fault, in a stable order.
    pub const ALL: [Fault; 4] = [
        Fault::HysteresisOffByOne,
        Fault::RevisitOffByOne,
        Fault::MonitorWindowOffByOne,
        Fault::OscillationCapOffByOne,
    ];

    /// Stable name used on the CLI and in artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::HysteresisOffByOne => "hysteresis-off-by-one",
            Fault::RevisitOffByOne => "revisit-off-by-one",
            Fault::MonitorWindowOffByOne => "monitor-window-off-by-one",
            Fault::OscillationCapOffByOne => "oscillation-cap-off-by-one",
        }
    }

    /// Parses a fault name.
    pub fn from_name(name: &str) -> Option<Fault> {
        Fault::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Applies the perturbation to the subject's parameters. Returns the
    /// parameters unchanged when the targeted knob is not in play (e.g.
    /// the hysteresis fault under `EvictionMode::Never`).
    pub fn apply(&self, mut p: ControllerParams) -> ControllerParams {
        match self {
            Fault::HysteresisOffByOne => {
                if let EvictionMode::Counter {
                    up,
                    down,
                    threshold,
                } = p.eviction
                {
                    p.eviction = EvictionMode::Counter {
                        up,
                        down,
                        threshold: (threshold - 1).max(up),
                    };
                }
            }
            Fault::RevisitOffByOne => {
                if let Revisit::After(n) = p.revisit {
                    p.revisit = Revisit::After(n + 1);
                }
            }
            Fault::MonitorWindowOffByOne => {
                p.monitor_period += 1;
            }
            Fault::OscillationCapOffByOne => {
                if let Some(limit) = p.oscillation_limit {
                    p.oscillation_limit = Some(limit + 1);
                }
            }
        }
        p
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for f in Fault::ALL {
            assert_eq!(Fault::from_name(f.name()), Some(f));
        }
        assert_eq!(Fault::from_name("nonsense"), None);
    }

    #[test]
    fn every_fault_changes_the_baseline_params() {
        let base = ControllerParams::scaled();
        for f in Fault::ALL {
            let perturbed = f.apply(base);
            assert_ne!(perturbed, base, "{f} must perturb the baseline");
            assert!(perturbed.validate().is_ok(), "{f} must stay valid");
        }
    }

    #[test]
    fn faults_are_noops_when_knob_is_absent() {
        let p = ControllerParams::scaled()
            .without_eviction()
            .without_revisit();
        assert_eq!(Fault::HysteresisOffByOne.apply(p), p);
        assert_eq!(Fault::RevisitOffByOne.apply(p), p);
        let mut p = ControllerParams::scaled();
        p.oscillation_limit = None;
        assert_eq!(Fault::OscillationCapOffByOne.apply(p), p);
    }
}
