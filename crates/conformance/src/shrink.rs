//! Deterministic counterexample minimization.
//!
//! When the differ finds a divergence over a fuzzed trace, a raw failing
//! trace of tens of thousands of events is nearly useless for debugging.
//! [`shrink`] reduces it in three phases, re-running the differential
//! case after every candidate edit and keeping only edits that preserve
//! failure:
//!
//! 1. **Truncation** — cut everything after the reported divergence
//!    index, repeatedly (the index usually moves earlier as context
//!    shrinks).
//! 2. **Prefix bisection** — binary-search the shortest failing prefix.
//! 3. **Block removal** — ddmin-style deletion of interior blocks at
//!    geometrically shrinking granularity, down to single events.
//!
//! Every phase is a pure function of its inputs, so a shrink is exactly
//! reproducible; the differ itself is deterministic, so "still fails" is
//! a stable predicate. Divergence behavior under chunked mode is not
//! perfectly monotone (removing events shifts every later chunk
//! boundary), which is why each phase keeps the last *failing* candidate
//! rather than assuming smaller is always still failing.

use crate::differ::{run_case, CaseSpec, Divergence};
use rsc_trace::BranchRecord;

/// Hard ceiling on differ invocations per shrink, so pathological cases
/// stay bounded. Each invocation replays at most the current candidate.
pub const DEFAULT_BUDGET: usize = 3_000;

/// Minimizes `trace` while `spec` keeps failing on it.
///
/// Returns the shortest failing trace found and its divergence. The
/// input must fail; the output is guaranteed to fail (it is only ever
/// replaced by a candidate that was re-checked).
///
/// # Panics
///
/// Panics if `trace` does not fail under `spec`.
pub fn shrink(spec: &CaseSpec, trace: &[BranchRecord]) -> (Vec<BranchRecord>, Divergence) {
    shrink_with_budget(spec, trace, DEFAULT_BUDGET)
}

/// [`shrink`] with an explicit differ-invocation budget.
///
/// # Panics
///
/// Panics if `trace` does not fail under `spec`.
pub fn shrink_with_budget(
    spec: &CaseSpec,
    trace: &[BranchRecord],
    budget: usize,
) -> (Vec<BranchRecord>, Divergence) {
    shrink_by(
        trace,
        budget,
        |candidate| run_case(spec, candidate).err(),
        |div| div.index,
    )
}

/// Minimizes `trace` while an arbitrary failure predicate keeps holding.
///
/// This is the generic core of [`shrink`]: `fails` returns `Some`
/// evidence when a candidate still fails (a [`Divergence`] for the
/// differ, a misspeculation budget overrun for the fuzzer's worst-case
/// minimizer, …), and `index_of` maps that evidence to the event index
/// it anchors to — used by the truncation phase; return `trace.len()`
/// if the failure has no meaningful position. `fails` is invoked at
/// most `budget` times after the initial check.
///
/// # Panics
///
/// Panics if `trace` does not fail the predicate.
pub fn shrink_by<E>(
    trace: &[BranchRecord],
    budget: usize,
    mut fails: impl FnMut(&[BranchRecord]) -> Option<E>,
    index_of: impl Fn(&E) -> usize,
) -> (Vec<BranchRecord>, E) {
    let runs = std::cell::Cell::new(0usize);
    let mut fails = |candidate: &[BranchRecord]| -> Option<E> {
        runs.set(runs.get() + 1);
        fails(candidate)
    };
    let runs = || runs.get();

    let mut best = trace.to_vec();
    let mut div = fails(&best).expect("shrink requires a failing trace");

    // Phase 1: truncate to the divergence point until it stops moving.
    loop {
        let cut = (index_of(&div) + 1).min(best.len());
        if cut >= best.len() || runs() >= budget {
            break;
        }
        match fails(&best[..cut]) {
            Some(d) => {
                best.truncate(cut);
                div = d;
            }
            None => break, // end-state divergence needed the tail; keep it
        }
    }

    // Phase 2: binary-search the shortest failing prefix.
    let (mut lo, mut hi) = (0usize, best.len());
    while lo + 1 < hi && runs() < budget {
        let mid = lo + (hi - lo) / 2;
        match fails(&best[..mid]) {
            Some(d) => {
                hi = mid;
                div = d;
            }
            None => lo = mid,
        }
    }
    best.truncate(hi);

    // Phase 3: ddmin-style interior block removal.
    let mut block = (best.len() / 2).max(1);
    while block >= 1 && runs() < budget {
        let mut i = 0;
        while i + block <= best.len() && runs() < budget {
            let mut candidate = Vec::with_capacity(best.len() - block);
            candidate.extend_from_slice(&best[..i]);
            candidate.extend_from_slice(&best[i + block..]);
            if candidate.is_empty() {
                i += block;
                continue;
            }
            match fails(&candidate) {
                Some(d) => {
                    best = candidate;
                    div = d;
                    // Do not advance: the next block slid into position i.
                }
                None => i += block,
            }
        }
        if block == 1 {
            break;
        }
        block /= 2;
    }

    (best, div)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differ::Mode;
    use crate::fault::Fault;
    use rsc_control::{ControllerParams, EvictionMode, Revisit};
    use rsc_trace::Scenario;

    fn tiny() -> ControllerParams {
        let mut p = ControllerParams::scaled();
        p.monitor_period = 10;
        p.eviction = EvictionMode::Counter {
            up: 50,
            down: 1,
            threshold: 100,
        };
        p.revisit = Revisit::After(20);
        p.oscillation_limit = Some(3);
        p.optimization_latency = 0;
        p
    }

    fn faulty_spec(fault: Fault, mode: Mode) -> CaseSpec {
        CaseSpec {
            subject: fault.apply(tiny()),
            reference: tiny(),
            mode,
            resilience: None,
        }
    }

    #[test]
    fn shrunk_trace_still_fails_and_is_much_smaller() {
        let spec = faulty_spec(Fault::HysteresisOffByOne, Mode::PerEvent);
        let trace = Scenario::HysteresisStraddle {
            warmup: 10,
            period: 2,
        }
        .generate(20_000, 7);
        assert!(run_case(&spec, &trace).is_err());
        let (small, div) = shrink(&spec, &trace);
        assert!(
            run_case(&spec, &small).is_err(),
            "minimized trace must fail"
        );
        assert!(
            small.len() <= 1_000,
            "expected a short counterexample, got {} events",
            small.len()
        );
        assert!(div.index <= small.len());
    }

    #[test]
    fn shrinking_is_deterministic() {
        let spec = faulty_spec(Fault::MonitorWindowOffByOne, Mode::PerEvent);
        let trace = Scenario::ThresholdOscillator { window: 10 }.generate(8_000, 3);
        let a = shrink(&spec, &trace);
        let b = shrink(&spec, &trace);
        assert_eq!(a, b);
    }

    #[test]
    fn chunked_mode_shrinks_too() {
        let spec = faulty_spec(Fault::HysteresisOffByOne, Mode::Chunked { seed: 11 });
        let trace = Scenario::HysteresisStraddle {
            warmup: 10,
            period: 2,
        }
        .generate(20_000, 7);
        assert!(run_case(&spec, &trace).is_err());
        let (small, _) = shrink(&spec, &trace);
        assert!(run_case(&spec, &small).is_err());
        assert!(small.len() <= 1_000, "got {} events", small.len());
    }

    #[test]
    fn shrink_by_minimizes_against_a_custom_predicate() {
        // Fuzzer-style worst-case minimization: "still fails" means the
        // candidate still contains at least 5 not-taken executions.
        let trace = Scenario::UniformRandom { branches: 4 }.generate(5_000, 2);
        let misses = |t: &[rsc_trace::BranchRecord]| t.iter().filter(|r| !r.taken).count();
        assert!(misses(&trace) >= 5);
        let (small, count) = shrink_by(
            &trace,
            DEFAULT_BUDGET,
            |cand| {
                let m = misses(cand);
                (m >= 5).then_some(m)
            },
            |_| trace.len(),
        );
        assert_eq!(count, 5, "minimal witness keeps exactly the budget");
        assert_eq!(small.len(), 5, "everything else is removed");
    }

    #[test]
    #[should_panic(expected = "shrink requires a failing trace")]
    fn shrinking_a_passing_trace_panics() {
        let spec = CaseSpec {
            subject: tiny(),
            reference: tiny(),
            mode: Mode::PerEvent,
            resilience: None,
        };
        let trace = Scenario::UniformRandom { branches: 4 }.generate(500, 1);
        shrink(&spec, &trace);
    }
}
