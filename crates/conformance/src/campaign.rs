//! Seed-driven differential fuzzing campaigns.
//!
//! A campaign sweeps a seed range over the cross-product of a controller
//! parameter matrix, the adversarial scenarios tuned to each parameter
//! set, and both execution modes (per-event and chunked). The first
//! divergence aborts the sweep: the failing trace is shrunk and packaged
//! as a [`Counterexample`].
//!
//! With no [`Fault`] injected, a campaign is the conformance check
//! proper — it must find nothing. With a fault, it is a self-test of the
//! harness — it must find something, quickly and minimally.

use crate::artifact::Counterexample;
use crate::differ::{run_case, run_policy_case, CaseSpec, Mode};
use crate::fault::Fault;
use crate::shrink::shrink;
use rsc_control::{ControllerParams, EvictionMode, Revisit, BUILTIN_POLICY_IDS};
use rsc_trace::rng::SplitMix64;
use rsc_trace::Scenario;

/// What to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// First seed (inclusive).
    pub seed_start: u64,
    /// Last seed (exclusive).
    pub seed_end: u64,
    /// Events per generated trace.
    pub events: u64,
    /// Fault to inject into the subject (harness self-test mode).
    pub fault: Option<Fault>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed_start: 0,
            seed_end: 64,
            events: 2_000,
            fault: None,
        }
    }
}

/// Outcome of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Differential cases executed (trace × mode pairs).
    pub cases: u64,
    /// Total events fed to each controller.
    pub events_fed: u64,
    /// The first divergence found, already shrunk. `None` is conformance.
    pub counterexample: Option<Counterexample>,
}

/// The controller parameterizations every campaign sweeps.
///
/// All time constants are deliberately tiny so that every FSM arc —
/// selection, eviction, revisit, oscillation disable, deployment latency
/// — fires many times within a few thousand events. (At the paper's
/// Table 2 scale a 2,000-event trace would never leave the monitor
/// state, and the fuzzer would certify an implementation that had never
/// speculated.)
pub fn param_matrix() -> Vec<(&'static str, ControllerParams)> {
    let mut tiny = ControllerParams::scaled();
    tiny.monitor_period = 10;
    tiny.eviction = EvictionMode::Counter {
        up: 50,
        down: 1,
        threshold: 100,
    };
    tiny.revisit = Revisit::After(20);
    tiny.oscillation_limit = Some(3);
    tiny.optimization_latency = 0;

    let mut sampled = tiny.with_monitor_sampling(2);
    sampled.eviction = EvictionMode::Sampling {
        period: 20,
        samples: 10,
        bias_threshold: 0.98,
    };

    let mut short_scaled = ControllerParams::scaled();
    short_scaled.monitor_period = 100;
    short_scaled.eviction = EvictionMode::Counter {
        up: 50,
        down: 1,
        threshold: 200,
    };
    short_scaled.revisit = Revisit::After(200);
    short_scaled.optimization_latency = 500;

    vec![
        ("tiny", tiny),
        ("tiny-latency", tiny.with_latency(40)),
        ("tiny-sampled", sampled),
        ("tiny-confidence", tiny.with_confidence_monitor(2.58, 4, 32)),
        ("tiny-open", tiny.without_eviction().without_revisit()),
        ("short-scaled", short_scaled),
    ]
}

/// The adversarial scenarios for one parameter set, with periodicities
/// aliased against its time constants.
pub fn scenarios_for(p: &ControllerParams) -> Vec<Scenario> {
    let monitor = p.monitor_period;
    let revisit = match p.revisit {
        Revisit::After(n) => n,
        Revisit::Never => 2 * monitor,
    };
    vec![
        Scenario::PhaseFlip {
            branches: 4,
            flip_after: 5 * monitor,
        },
        Scenario::HysteresisStraddle {
            warmup: monitor,
            period: 2,
        },
        Scenario::HysteresisStraddle {
            warmup: monitor,
            period: 3,
        },
        Scenario::RevisitAlias {
            period: monitor + revisit,
        },
        Scenario::ThresholdOscillator { window: monitor },
        Scenario::BurstyHotSet {
            hot: 3,
            burst: 4 * monitor,
        },
        Scenario::UniformRandom { branches: 8 },
    ]
}

/// Runs the campaign, stopping at the first divergence.
///
/// Every (seed, params, scenario) cell runs in three modes: per-event,
/// chunked, and sharded (the shard count cycles through 1..=8 with the
/// case's sub-seed, so a sweep of a few seeds covers every count).
pub fn run(config: &CampaignConfig) -> CampaignReport {
    sweep(config, &|sub_seed| {
        vec![
            Mode::PerEvent,
            Mode::Chunked { seed: sub_seed },
            Mode::Sharded {
                shards: 1 + (sub_seed % 8) as usize,
                seed: sub_seed,
            },
        ]
    })
}

/// A divergence found by the policy-zoo sweep. Policy cases compare a
/// fast path against the same policy's per-event semantics, so there is
/// no cross-implementation artifact to shrink and replay — the sweep
/// reports the cell instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyDivergence {
    /// Id of the diverging policy.
    pub policy: &'static str,
    /// Scenario that produced the trace.
    pub scenario: String,
    /// Seed the trace (and chunk layout) derived from.
    pub seed: u64,
    /// How the subject consumed the trace.
    pub mode: Mode,
    /// Human-readable description of what differed.
    pub detail: String,
}

impl std::fmt::Display for PolicyDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "policy {} diverged ({}, scenario {}, seed {}): {}",
            self.policy,
            self.mode.name(),
            self.scenario,
            self.seed,
            self.detail
        )
    }
}

/// Outcome of the policy-zoo sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyCampaignReport {
    /// Differential cases executed (trace × policy × mode).
    pub cases: u64,
    /// Total events fed to each controller.
    pub events_fed: u64,
    /// The first divergence found. `None` is conformance.
    pub failure: Option<PolicyDivergence>,
}

/// Runs the policy-zoo sweep: every builtin policy, over the same seed ×
/// parameter-matrix × scenario grid as [`run`], each cell checked in
/// chunked and sharded mode against the policy's own per-event
/// semantics (`paper-fsm` is additionally held to the golden
/// [`ReferenceController`](rsc_control::ReferenceController)).
///
/// A configured [`Fault`] perturbs the *subject's* parameters only, so
/// the sweep doubles as a harness self-test — though only faults in
/// machinery a policy actually consults (e.g. the monitor window) are
/// observable for every policy.
pub fn run_policies(config: &CampaignConfig) -> PolicyCampaignReport {
    let matrix = param_matrix();
    let mut cases = 0u64;
    let mut events_fed = 0u64;

    for seed in config.seed_start..config.seed_end {
        for (pi, (_, params)) in matrix.iter().enumerate() {
            let subject = match config.fault {
                Some(f) => f.apply(*params),
                None => *params,
            };
            for (si, scenario) in scenarios_for(params).into_iter().enumerate() {
                let sub_seed = SplitMix64::new(
                    seed.wrapping_mul(0x0100_0000_01b3) ^ ((pi as u64) << 32) ^ (si as u64),
                )
                .next_u64();
                let trace = scenario.generate(config.events, sub_seed);
                for policy in BUILTIN_POLICY_IDS {
                    for mode in [
                        Mode::Chunked { seed: sub_seed },
                        Mode::Sharded {
                            shards: 1 + (sub_seed % 8) as usize,
                            seed: sub_seed,
                        },
                    ] {
                        cases += 1;
                        events_fed += trace.len() as u64;
                        if let Err(div) = run_policy_case(policy, subject, *params, mode, &trace) {
                            return PolicyCampaignReport {
                                cases,
                                events_fed,
                                failure: Some(PolicyDivergence {
                                    policy,
                                    scenario: scenario.name().to_string(),
                                    seed: sub_seed,
                                    mode,
                                    detail: div.to_string(),
                                }),
                            };
                        }
                    }
                }
            }
        }
    }

    PolicyCampaignReport {
        cases,
        events_fed,
        failure: None,
    }
}

/// Runs a sharded-only campaign: every cell runs the sharded lockstep
/// once per shard count in `1..=max_shards`. This is the exhaustive
/// shard-count sweep behind `repro conformance --shards N`.
pub fn run_sharded(config: &CampaignConfig, max_shards: usize) -> CampaignReport {
    sweep(config, &|sub_seed| {
        (1..=max_shards.max(1))
            .map(|shards| Mode::Sharded {
                shards,
                seed: sub_seed,
            })
            .collect()
    })
}

/// The sweep skeleton shared by [`run`] and [`run_sharded`]: seed ×
/// parameter matrix × scenario, with the per-cell mode list supplied by
/// the caller.
fn sweep(config: &CampaignConfig, modes_for: &dyn Fn(u64) -> Vec<Mode>) -> CampaignReport {
    let matrix = param_matrix();
    let mut cases = 0u64;
    let mut events_fed = 0u64;

    for seed in config.seed_start..config.seed_end {
        for (pi, (_, params)) in matrix.iter().enumerate() {
            let subject = match config.fault {
                Some(f) => f.apply(*params),
                None => *params,
            };
            for (si, scenario) in scenarios_for(params).into_iter().enumerate() {
                let sub_seed = SplitMix64::new(
                    seed.wrapping_mul(0x0100_0000_01b3) ^ ((pi as u64) << 32) ^ (si as u64),
                )
                .next_u64();
                let trace = scenario.generate(config.events, sub_seed);
                for mode in modes_for(sub_seed) {
                    let spec = CaseSpec {
                        subject,
                        reference: *params,
                        mode,
                        // The campaign pins the legacy layerless behavior;
                        // resilient lockstep has its own differ tests.
                        resilience: None,
                    };
                    cases += 1;
                    events_fed += trace.len() as u64;
                    if run_case(&spec, &trace).is_err() {
                        let (minimized, div) = shrink(&spec, &trace);
                        return CampaignReport {
                            cases,
                            events_fed,
                            counterexample: Some(Counterexample {
                                scenario: scenario.name().to_string(),
                                seed: sub_seed,
                                fault: config.fault,
                                params: *params,
                                mode,
                                trace: minimized,
                                detail: div.to_string(),
                            }),
                        };
                    }
                }
            }
        }
    }

    CampaignReport {
        cases,
        events_fed,
        counterexample: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_campaign_finds_nothing() {
        let report = run(&CampaignConfig {
            seed_start: 0,
            seed_end: 2,
            events: 1_200,
            fault: None,
        });
        assert!(
            report.counterexample.is_none(),
            "unexpected divergence: {:?}",
            report.counterexample.map(|c| c.detail)
        );
        assert!(report.cases > 0);
        assert_eq!(report.events_fed, report.cases * 1_200);
    }

    #[test]
    fn campaign_is_deterministic() {
        let config = CampaignConfig {
            seed_start: 3,
            seed_end: 4,
            events: 800,
            fault: Some(Fault::HysteresisOffByOne),
        };
        assert_eq!(run(&config), run(&config));
    }

    #[test]
    fn sharded_sweep_conforms_and_counts_every_shard_count() {
        let config = CampaignConfig {
            seed_start: 0,
            seed_end: 1,
            events: 1_000,
            fault: None,
        };
        let report = run_sharded(&config, 8);
        assert!(
            report.counterexample.is_none(),
            "unexpected divergence: {:?}",
            report.counterexample.map(|c| c.detail)
        );
        // 6 param sets × 7 scenarios × 8 shard counts per seed.
        assert_eq!(report.cases, 6 * 7 * 8);
        assert_eq!(report.events_fed, report.cases * 1_000);
    }

    #[test]
    fn policy_sweep_conforms_across_the_zoo() {
        let config = CampaignConfig {
            seed_start: 0,
            seed_end: 1,
            events: 1_000,
            fault: None,
        };
        let report = run_policies(&config);
        assert!(
            report.failure.is_none(),
            "unexpected divergence: {}",
            report.failure.unwrap()
        );
        // 6 param sets × 7 scenarios × 4 policies × 2 modes per seed.
        assert_eq!(report.cases, 6 * 7 * 4 * 2);
        assert_eq!(report.events_fed, report.cases * 1_000);
    }

    #[test]
    fn policy_sweep_catches_monitor_faults_for_every_policy() {
        // The monitor window is machinery every policy consults, so an
        // off-by-one there must surface no matter which policy runs.
        let config = CampaignConfig {
            seed_start: 0,
            seed_end: 2,
            events: 1_200,
            fault: Some(Fault::MonitorWindowOffByOne),
        };
        let report = run_policies(&config);
        assert!(report.failure.is_some(), "fault must be caught");
    }

    #[test]
    fn sharded_sweep_catches_injected_faults() {
        let config = CampaignConfig {
            seed_start: 0,
            seed_end: 2,
            events: 1_200,
            fault: Some(Fault::HysteresisOffByOne),
        };
        let report = run_sharded(&config, 4);
        let cx = report.counterexample.expect("fault must be caught");
        assert!(matches!(cx.mode, Mode::Sharded { .. }));
        assert!(cx.replay().is_err(), "artifact must reproduce");
    }
}
