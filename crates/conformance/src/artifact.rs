//! Replayable counterexample artifacts.
//!
//! When a campaign finds (and shrinks) a divergence, the evidence is
//! written as a self-contained `.json` file: the true parameters, the
//! injected fault (if any), the subject's execution mode, the minimized
//! trace, and the observed divergence. `repro conformance --replay
//! <file>` reloads the file and re-runs the exact case, so a failure
//! found in CI reproduces on any machine with just the artifact.

use crate::differ::{run_case, CaseSpec, Divergence, Mode};
use crate::fault::Fault;
use crate::json::Json;
use rsc_control::{ControllerParams, EvictionMode, MonitorPolicy, Revisit};
use rsc_trace::{BranchId, BranchRecord};
use std::path::Path;

/// A minimized, replayable divergence report.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// Name of the adversarial scenario that produced the trace.
    pub scenario: String,
    /// Seed the trace (and chunk layout) derived from.
    pub seed: u64,
    /// Fault injected into the subject, if this was a harness self-test.
    pub fault: Option<Fault>,
    /// The true (reference) controller parameters.
    pub params: ControllerParams,
    /// How the subject consumed the trace.
    pub mode: Mode,
    /// The minimized failing trace.
    pub trace: Vec<BranchRecord>,
    /// Description of the divergence observed when the artifact was made.
    pub detail: String,
}

impl Counterexample {
    /// The differential case this artifact captures.
    pub fn spec(&self) -> CaseSpec {
        CaseSpec {
            subject: match self.fault {
                Some(f) => f.apply(self.params),
                None => self.params,
            },
            reference: self.params,
            mode: self.mode,
            resilience: None,
        }
    }

    /// Re-runs the case on the stored trace.
    ///
    /// # Errors
    ///
    /// Returns the reproduced [`Divergence`] — which is the *expected*
    /// outcome for a genuine artifact. `Ok(())` means the divergence no
    /// longer reproduces (e.g. the bug was fixed).
    pub fn replay(&self) -> Result<(), Divergence> {
        run_case(&self.spec(), &self.trace)
    }

    /// Serializes to a JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("format", Json::Int(1)),
            ("scenario", Json::str(self.scenario.clone())),
            ("seed", Json::Int(self.seed)),
            (
                "fault",
                match self.fault {
                    Some(f) => Json::str(f.name()),
                    None => Json::Null,
                },
            ),
            ("params", params_to_json(&self.params)),
            (
                "mode",
                match self.mode {
                    Mode::PerEvent => Json::obj([("kind", Json::str("per-event"))]),
                    Mode::Chunked { seed } => {
                        Json::obj([("kind", Json::str("chunked")), ("seed", Json::Int(seed))])
                    }
                    Mode::Sharded { shards, seed } => Json::obj([
                        ("kind", Json::str("sharded")),
                        ("shards", Json::Int(shards as u64)),
                        ("seed", Json::Int(seed)),
                    ]),
                },
            ),
            (
                "trace",
                Json::Arr(
                    self.trace
                        .iter()
                        .map(|r| {
                            Json::Arr(vec![
                                Json::Int(r.branch.index() as u64),
                                Json::Bool(r.taken),
                                Json::Int(r.instr),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("detail", Json::str(self.detail.clone())),
        ])
    }

    /// Deserializes from a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or ill-typed field.
    pub fn from_json(v: &Json) -> Result<Self, ArtifactError> {
        if v.get("format").and_then(Json::as_u64) != Some(1) {
            return Err(ArtifactError::Malformed("unsupported artifact format"));
        }
        let fault = match v.get("fault") {
            None | Some(Json::Null) => None,
            Some(f) => {
                let name = f.as_str().ok_or(ArtifactError::Malformed("fault"))?;
                Some(Fault::from_name(name).ok_or(ArtifactError::Malformed("unknown fault"))?)
            }
        };
        let mode_v = v.get("mode").ok_or(ArtifactError::Malformed("mode"))?;
        let mode = match mode_v.get("kind").and_then(Json::as_str) {
            Some("per-event") => Mode::PerEvent,
            Some("chunked") => Mode::Chunked {
                seed: field_u64(mode_v, "seed")?,
            },
            Some("sharded") => {
                let shards = usize::try_from(field_u64(mode_v, "shards")?)
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(ArtifactError::Malformed("mode.shards"))?;
                Mode::Sharded {
                    shards,
                    seed: field_u64(mode_v, "seed")?,
                }
            }
            _ => return Err(ArtifactError::Malformed("mode.kind")),
        };
        let trace = v
            .get("trace")
            .and_then(Json::as_arr)
            .ok_or(ArtifactError::Malformed("trace"))?
            .iter()
            .map(|item| {
                let t = item.as_arr().filter(|t| t.len() == 3)?;
                Some(BranchRecord {
                    branch: BranchId::new(u32::try_from(t[0].as_u64()?).ok()?),
                    taken: t[1].as_bool()?,
                    instr: t[2].as_u64()?,
                })
            })
            .collect::<Option<Vec<_>>>()
            .ok_or(ArtifactError::Malformed("trace entry"))?;
        Ok(Counterexample {
            scenario: v
                .get("scenario")
                .and_then(Json::as_str)
                .ok_or(ArtifactError::Malformed("scenario"))?
                .to_string(),
            seed: field_u64(v, "seed")?,
            fault,
            params: params_from_json(v.get("params").ok_or(ArtifactError::Malformed("params"))?)?,
            mode,
            trace,
            detail: v
                .get("detail")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        })
    }

    /// Writes the artifact to `path` (creating parent directories).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json().to_string())
    }

    /// Reads an artifact from `path`.
    ///
    /// # Errors
    ///
    /// Returns I/O, JSON syntax, or schema errors.
    pub fn load(path: &Path) -> Result<Self, ArtifactError> {
        let text = std::fs::read_to_string(path).map_err(ArtifactError::Io)?;
        let v = Json::parse(&text).map_err(ArtifactError::Json)?;
        Counterexample::from_json(&v)
    }
}

/// Why an artifact could not be loaded.
#[derive(Debug)]
pub enum ArtifactError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The file is not valid JSON.
    Json(crate::json::JsonError),
    /// The JSON does not match the artifact schema.
    Malformed(&'static str),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "cannot read artifact: {e}"),
            ArtifactError::Json(e) => write!(f, "artifact is not valid json: {e}"),
            ArtifactError::Malformed(what) => write!(f, "malformed artifact field: {what}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

fn field_u64(v: &Json, key: &'static str) -> Result<u64, ArtifactError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or(ArtifactError::Malformed(key))
}

fn field_f64(v: &Json, key: &'static str) -> Result<f64, ArtifactError> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or(ArtifactError::Malformed(key))
}

/// Serializes controller parameters to the artifact JSON schema
/// (shared with the fuzz corpus format).
pub fn params_to_json(p: &ControllerParams) -> Json {
    Json::obj([
        ("monitor_period", Json::Int(p.monitor_period)),
        (
            "monitor_policy",
            match p.monitor_policy {
                MonitorPolicy::FixedWindow => Json::obj([("kind", Json::str("fixed-window"))]),
                MonitorPolicy::Confidence {
                    z,
                    min_execs,
                    max_execs,
                } => Json::obj([
                    ("kind", Json::str("confidence")),
                    ("z", Json::Num(z)),
                    ("min_execs", Json::Int(min_execs)),
                    ("max_execs", Json::Int(max_execs)),
                ]),
            },
        ),
        ("monitor_sample_rate", Json::Int(p.monitor_sample_rate)),
        ("selection_threshold", Json::Num(p.selection_threshold)),
        (
            "eviction",
            match p.eviction {
                EvictionMode::Counter {
                    up,
                    down,
                    threshold,
                } => Json::obj([
                    ("kind", Json::str("counter")),
                    ("up", Json::Int(u64::from(up))),
                    ("down", Json::Int(u64::from(down))),
                    ("threshold", Json::Int(u64::from(threshold))),
                ]),
                EvictionMode::Sampling {
                    period,
                    samples,
                    bias_threshold,
                } => Json::obj([
                    ("kind", Json::str("sampling")),
                    ("period", Json::Int(period)),
                    ("samples", Json::Int(samples)),
                    ("bias_threshold", Json::Num(bias_threshold)),
                ]),
                EvictionMode::Never => Json::obj([("kind", Json::str("never"))]),
            },
        ),
        (
            "revisit",
            match p.revisit {
                Revisit::After(n) => Json::obj([("kind", Json::str("after")), ("n", Json::Int(n))]),
                Revisit::Never => Json::obj([("kind", Json::str("never"))]),
            },
        ),
        (
            "oscillation_limit",
            match p.oscillation_limit {
                Some(n) => Json::Int(u64::from(n)),
                None => Json::Null,
            },
        ),
        ("optimization_latency", Json::Int(p.optimization_latency)),
    ])
}

/// Parses controller parameters from the artifact JSON schema; inverse
/// of [`params_to_json`].
pub fn params_from_json(v: &Json) -> Result<ControllerParams, ArtifactError> {
    let monitor_v = v
        .get("monitor_policy")
        .ok_or(ArtifactError::Malformed("monitor_policy"))?;
    let monitor_policy = match monitor_v.get("kind").and_then(Json::as_str) {
        Some("fixed-window") => MonitorPolicy::FixedWindow,
        Some("confidence") => MonitorPolicy::Confidence {
            z: field_f64(monitor_v, "z")?,
            min_execs: field_u64(monitor_v, "min_execs")?,
            max_execs: field_u64(monitor_v, "max_execs")?,
        },
        _ => return Err(ArtifactError::Malformed("monitor_policy.kind")),
    };
    let eviction_v = v
        .get("eviction")
        .ok_or(ArtifactError::Malformed("eviction"))?;
    let eviction = match eviction_v.get("kind").and_then(Json::as_str) {
        Some("counter") => EvictionMode::Counter {
            up: narrow_u32(field_u64(eviction_v, "up")?)?,
            down: narrow_u32(field_u64(eviction_v, "down")?)?,
            threshold: narrow_u32(field_u64(eviction_v, "threshold")?)?,
        },
        Some("sampling") => EvictionMode::Sampling {
            period: field_u64(eviction_v, "period")?,
            samples: field_u64(eviction_v, "samples")?,
            bias_threshold: field_f64(eviction_v, "bias_threshold")?,
        },
        Some("never") => EvictionMode::Never,
        _ => return Err(ArtifactError::Malformed("eviction.kind")),
    };
    let revisit_v = v
        .get("revisit")
        .ok_or(ArtifactError::Malformed("revisit"))?;
    let revisit = match revisit_v.get("kind").and_then(Json::as_str) {
        Some("after") => Revisit::After(field_u64(revisit_v, "n")?),
        Some("never") => Revisit::Never,
        _ => return Err(ArtifactError::Malformed("revisit.kind")),
    };
    let oscillation_limit = match v.get("oscillation_limit") {
        None | Some(Json::Null) => None,
        Some(n) => Some(narrow_u32(
            n.as_u64()
                .ok_or(ArtifactError::Malformed("oscillation_limit"))?,
        )?),
    };
    let params = ControllerParams {
        monitor_period: field_u64(v, "monitor_period")?,
        monitor_policy,
        monitor_sample_rate: field_u64(v, "monitor_sample_rate")?,
        selection_threshold: field_f64(v, "selection_threshold")?,
        eviction,
        revisit,
        oscillation_limit,
        optimization_latency: field_u64(v, "optimization_latency")?,
    };
    params
        .validate()
        .map_err(|_| ArtifactError::Malformed("params fail validation"))?;
    Ok(params)
}

fn narrow_u32(n: u64) -> Result<u32, ArtifactError> {
    u32::try_from(n).map_err(|_| ArtifactError::Malformed("value exceeds u32"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(mode: Mode, params: ControllerParams) -> Counterexample {
        Counterexample {
            scenario: "hysteresis_straddle".to_string(),
            seed: 7,
            fault: Some(Fault::HysteresisOffByOne),
            params,
            mode,
            trace: vec![
                BranchRecord {
                    branch: BranchId::new(0),
                    taken: true,
                    instr: 5,
                },
                BranchRecord {
                    branch: BranchId::new(1),
                    taken: false,
                    instr: 12,
                },
            ],
            detail: "decision mismatch on branch 0".to_string(),
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        for mode in [
            Mode::PerEvent,
            Mode::Chunked { seed: 99 },
            Mode::Sharded {
                shards: 4,
                seed: 99,
            },
        ] {
            for params in [
                ControllerParams::scaled(),
                ControllerParams::table2()
                    .with_sampled_eviction()
                    .with_confidence_monitor(2.58, 4, 32)
                    .without_revisit(),
            ] {
                let cx = sample(mode, params);
                let text = cx.to_json().to_string();
                let back = Counterexample::from_json(&Json::parse(&text).unwrap()).unwrap();
                assert_eq!(back, cx);
            }
        }
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("rsc_conformance_artifact_test");
        let path = dir.join("cx.json");
        let cx = sample(Mode::PerEvent, ControllerParams::scaled());
        cx.save(&path).unwrap();
        let back = Counterexample::load(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(back, cx);
    }

    #[test]
    fn rejects_unknown_format_and_bad_fields() {
        assert!(matches!(
            Counterexample::from_json(&Json::obj([("format", Json::Int(2))])),
            Err(ArtifactError::Malformed(_))
        ));
        let mut cx = sample(Mode::PerEvent, ControllerParams::scaled()).to_json();
        if let Json::Obj(pairs) = &mut cx {
            pairs.retain(|(k, _)| k != "trace");
        }
        assert!(Counterexample::from_json(&cx).is_err());
    }

    #[test]
    fn invalid_params_are_rejected_on_load() {
        let mut v = sample(Mode::PerEvent, ControllerParams::scaled()).to_json();
        if let Some(Json::Obj(pairs)) = {
            if let Json::Obj(top) = &mut v {
                top.iter_mut().find(|(k, _)| k == "params").map(|(_, p)| p)
            } else {
                None
            }
        } {
            for (k, val) in pairs.iter_mut() {
                if k == "monitor_period" {
                    *val = Json::Int(0);
                }
            }
        }
        assert!(matches!(
            Counterexample::from_json(&v),
            Err(ArtifactError::Malformed("params fail validation"))
        ));
    }
}
