//! Acceptance criteria for the conformance subsystem (ISSUE 2):
//!
//! * a clean campaign finds zero divergences between the optimized
//!   controller (per-event and chunked) and the golden reference;
//! * every seeded fault IS caught, shrunk to ≤ 1,000 events, and
//!   packaged as an artifact that replays the divergence after a JSON
//!   round-trip.

use rsc_conformance::json::Json;
use rsc_conformance::{campaign, CampaignConfig, Counterexample, Fault};

#[test]
fn clean_campaign_finds_zero_divergences() {
    let report = campaign::run(&CampaignConfig {
        seed_start: 0,
        seed_end: 8,
        events: 2_000,
        fault: None,
    });
    assert!(
        report.counterexample.is_none(),
        "optimized controller diverged from the reference: {:?}",
        report.counterexample.map(|c| c.detail)
    );
    assert!(report.cases >= 8 * 6 * 7 * 2, "campaign under-covered");
}

#[test]
fn every_seeded_fault_is_caught_shrunk_and_replayable() {
    for fault in Fault::ALL {
        let report = campaign::run(&CampaignConfig {
            seed_start: 0,
            seed_end: 8,
            events: 2_000,
            fault: Some(fault),
        });
        let cx = report
            .counterexample
            .unwrap_or_else(|| panic!("{fault} was not caught"));
        assert!(
            cx.trace.len() <= 1_000,
            "{fault}: counterexample not minimal enough ({} events)",
            cx.trace.len()
        );
        assert!(
            cx.replay().is_err(),
            "{fault}: minimized counterexample must still diverge"
        );

        let text = cx.to_json().to_string();
        let reloaded = Counterexample::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(reloaded, cx, "{fault}: artifact must round-trip");
        let div = reloaded
            .replay()
            .expect_err("reloaded artifact must reproduce the divergence");
        assert!(!div.detail.is_empty());
    }
}

#[test]
fn fault_free_replay_of_a_faulty_artifact_passes() {
    // The same trace, replayed with the fault removed, must conform —
    // proving the divergence comes from the fault, not the harness.
    let report = campaign::run(&CampaignConfig {
        seed_start: 0,
        seed_end: 8,
        events: 2_000,
        fault: Some(Fault::HysteresisOffByOne),
    });
    let mut cx = report.counterexample.expect("fault should be caught");
    cx.fault = None;
    assert!(cx.replay().is_ok());
}
