//! Open-loop evaluation: applying a static [`SpeculationSet`] to a trace.

use crate::select::SpeculationSet;
use rsc_trace::BranchRecord;

/// Outcome counts from running speculation over a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecOutcome {
    /// Dynamic branches speculated in the correct direction.
    pub correct: u64,
    /// Dynamic branches speculated in the wrong direction.
    pub incorrect: u64,
    /// Total dynamic branch events observed.
    pub events: u64,
    /// Total dynamic instructions observed.
    pub instructions: u64,
}

impl SpecOutcome {
    /// Fraction of dynamic branches speculated correctly (Figure 2 y axis).
    pub fn correct_frac(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.correct as f64 / self.events as f64
        }
    }

    /// Fraction of dynamic branches misspeculated (Figure 2 x axis).
    pub fn incorrect_frac(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.incorrect as f64 / self.events as f64
        }
    }

    /// Average instructions between misspeculations (Table 3 "misspec
    /// dist."), or `None` if there were no misspeculations.
    pub fn misspec_distance(&self) -> Option<u64> {
        self.instructions.checked_div(self.incorrect)
    }

    /// Adds another outcome (used when aggregating across benchmarks).
    pub fn accumulate(&mut self, other: &SpecOutcome) {
        self.correct += other.correct;
        self.incorrect += other.incorrect;
        self.events += other.events;
        self.instructions += other.instructions;
    }
}

/// Evaluates a static speculation set over a trace: every execution of a
/// selected branch counts as correct or incorrect depending on whether the
/// outcome matches the speculated direction.
///
/// This models the paper's *open-loop* techniques, where a decision is made
/// once and never revisited.
///
/// # Examples
///
/// ```
/// use rsc_trace::{spec2000, InputId};
/// use rsc_profile::{evaluate, BranchProfile, SpeculationSet};
///
/// let pop = spec2000::benchmark("eon").unwrap().population(30_000);
/// let profile = BranchProfile::from_trace(pop.trace(InputId::Eval, 30_000, 1));
/// let set = SpeculationSet::from_profile(&profile, 0.99, 1);
/// // Self-training: evaluate on the same trace we profiled.
/// let out = evaluate::evaluate(&set, pop.trace(InputId::Eval, 30_000, 1));
/// assert!(out.correct_frac() > out.incorrect_frac());
/// ```
pub fn evaluate<I: IntoIterator<Item = BranchRecord>>(
    set: &SpeculationSet,
    trace: I,
) -> SpecOutcome {
    let mut out = SpecOutcome::default();
    for r in trace {
        out.events += 1;
        out.instructions = out.instructions.max(r.instr);
        if let Some(dir) = set.decision(r.branch) {
            if dir.matches(r.taken) {
                out.correct += 1;
            } else {
                out.incorrect += 1;
            }
        }
    }
    out
}

/// Evaluates a speculation set, but for each branch only counts executions
/// after its first `training_execs` (its training window).
///
/// This models initial-behavior training honestly: during a branch's
/// profiling window the unoptimized code runs, so those executions are
/// neither correct nor incorrect speculations.
pub fn evaluate_after_training<I: IntoIterator<Item = BranchRecord>>(
    set: &SpeculationSet,
    trace: I,
    training_execs: u64,
) -> SpecOutcome {
    let mut out = SpecOutcome::default();
    let mut execs: Vec<u64> = vec![0; set.len()];
    for r in trace {
        out.events += 1;
        out.instructions = out.instructions.max(r.instr);
        let idx = r.branch.index();
        if idx >= execs.len() {
            execs.resize(idx + 1, 0);
        }
        let e = execs[idx];
        execs[idx] += 1;
        if e < training_execs {
            continue;
        }
        if let Some(dir) = set.decision(r.branch) {
            if dir.matches(r.taken) {
                out.correct += 1;
            } else {
                out.incorrect += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_trace::{BranchId, Direction};

    fn rec(b: u32, taken: bool, instr: u64) -> BranchRecord {
        BranchRecord {
            branch: BranchId::new(b),
            taken,
            instr,
        }
    }

    #[test]
    fn counts_correct_and_incorrect() {
        let mut set = SpeculationSet::new();
        set.set(BranchId::new(0), Some(Direction::Taken));
        let out = evaluate(
            &set,
            vec![rec(0, true, 10), rec(0, false, 20), rec(1, true, 30)],
        );
        assert_eq!(out.correct, 1);
        assert_eq!(out.incorrect, 1);
        assert_eq!(out.events, 3);
        assert_eq!(out.instructions, 30);
    }

    #[test]
    fn unselected_branches_are_neutral() {
        let set = SpeculationSet::new();
        let out = evaluate(&set, vec![rec(0, true, 1), rec(0, false, 2)]);
        assert_eq!(out.correct + out.incorrect, 0);
        assert_eq!(out.events, 2);
    }

    #[test]
    fn fractions_and_distance() {
        let mut set = SpeculationSet::new();
        set.set(BranchId::new(0), Some(Direction::NotTaken));
        let out = evaluate(&set, (0..10).map(|i| rec(0, i == 0, (i + 1) * 100)));
        assert!((out.correct_frac() - 0.9).abs() < 1e-12);
        assert!((out.incorrect_frac() - 0.1).abs() < 1e-12);
        assert_eq!(out.misspec_distance(), Some(1000));
    }

    #[test]
    fn no_misspecs_means_no_distance() {
        let out = SpecOutcome {
            correct: 5,
            incorrect: 0,
            events: 5,
            instructions: 100,
        };
        assert_eq!(out.misspec_distance(), None);
    }

    #[test]
    fn empty_trace_fractions_are_zero() {
        let out = SpecOutcome::default();
        assert_eq!(out.correct_frac(), 0.0);
        assert_eq!(out.incorrect_frac(), 0.0);
    }

    #[test]
    fn training_window_is_excluded() {
        let mut set = SpeculationSet::new();
        set.set(BranchId::new(0), Some(Direction::Taken));
        // 5 executions; first 3 are training.
        let out = evaluate_after_training(&set, (0..5).map(|i| rec(0, true, i + 1)), 3);
        assert_eq!(out.correct, 2);
        assert_eq!(out.events, 5);
    }

    #[test]
    fn training_applies_per_branch() {
        let mut set = SpeculationSet::new();
        set.set(BranchId::new(0), Some(Direction::Taken));
        set.set(BranchId::new(1), Some(Direction::Taken));
        let trace = vec![
            rec(0, true, 1),
            rec(1, true, 2),
            rec(0, true, 3),
            rec(1, true, 4),
        ];
        let out = evaluate_after_training(&set, trace, 1);
        assert_eq!(out.correct, 2, "each branch skips exactly one execution");
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = SpecOutcome {
            correct: 1,
            incorrect: 2,
            events: 3,
            instructions: 4,
        };
        a.accumulate(&SpecOutcome {
            correct: 10,
            incorrect: 20,
            events: 30,
            instructions: 40,
        });
        assert_eq!(
            a,
            SpecOutcome {
                correct: 11,
                incorrect: 22,
                events: 33,
                instructions: 44
            }
        );
    }
}
