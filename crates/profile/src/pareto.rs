//! The correct/incorrect speculation trade-off curve (the paper's Figure 2).
//!
//! With perfect knowledge of the whole run (self-training), the Pareto
//! optimal set for any misspeculation budget speculates on branches in
//! decreasing order of bias. Walking branches in that order and
//! accumulating majority (correct) and minority (incorrect) counts yields
//! the full trade-off curve.

use crate::profile::BranchProfile;

/// One point on the trade-off curve: fractions of *all dynamic branch
/// events* speculated correctly and incorrectly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ParetoPoint {
    /// Fraction of dynamic branches misspeculated (x axis of Figure 2).
    pub incorrect: f64,
    /// Fraction of dynamic branches correctly speculated (y axis).
    pub correct: f64,
}

/// Computes the self-training Pareto curve from a whole-run profile.
///
/// Points are cumulative, ordered from speculating on nothing toward
/// speculating on everything (branches added in decreasing bias order).
/// The returned vector has one point per touched branch plus an implicit
/// origin (not included).
///
/// # Examples
///
/// ```
/// use rsc_trace::{spec2000, InputId};
/// use rsc_profile::{pareto, BranchProfile};
///
/// let pop = spec2000::benchmark("bzip2").unwrap().population(20_000);
/// let profile = BranchProfile::from_trace(pop.trace(InputId::Eval, 20_000, 1));
/// let curve = pareto::curve(&profile);
/// assert!(!curve.is_empty());
/// // The curve is monotone in both axes.
/// assert!(curve.last().unwrap().correct >= curve[0].correct);
/// ```
pub fn curve(profile: &BranchProfile) -> Vec<ParetoPoint> {
    let mut branches: Vec<(u64, u64)> = profile
        .iter_touched()
        .map(|(b, n, _)| {
            let t = profile.taken(b.index());
            let correct = t.max(n - t);
            (correct, n - correct)
        })
        .collect();
    // Sort by decreasing bias = correct/n; compare a.c*b.n vs b.c*a.n.
    branches.sort_by(|a, b| {
        let an = a.0 + a.1;
        let bn = b.0 + b.1;
        (b.0 as u128 * an as u128).cmp(&(a.0 as u128 * bn as u128))
    });
    let total = profile.events().max(1) as f64;
    let mut correct_cum = 0u64;
    let mut incorrect_cum = 0u64;
    branches
        .into_iter()
        .map(|(c, i)| {
            correct_cum += c;
            incorrect_cum += i;
            ParetoPoint {
                incorrect: incorrect_cum as f64 / total,
                correct: correct_cum as f64 / total,
            }
        })
        .collect()
}

/// The point achieved by self-training with a bias threshold: speculate on
/// exactly the branches whose whole-run bias meets `threshold` (the circle
/// marker of Figure 2 uses 99%).
///
/// # Panics
///
/// Panics if `threshold` is not in `(0.5, 1.0]`.
pub fn threshold_point(profile: &BranchProfile, threshold: f64) -> ParetoPoint {
    assert!(
        threshold > 0.5 && threshold <= 1.0,
        "threshold must be in (0.5, 1.0], got {threshold}"
    );
    let total = profile.events().max(1) as f64;
    let mut correct = 0u64;
    let mut incorrect = 0u64;
    for (b, n, bias) in profile.iter_touched() {
        if bias >= threshold {
            let t = profile.taken(b.index());
            let c = t.max(n - t);
            correct += c;
            incorrect += n - c;
        }
    }
    ParetoPoint {
        incorrect: incorrect as f64 / total,
        correct: correct as f64 / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_trace::{BranchId, BranchRecord};

    fn profile_of(events: &[(u32, bool)]) -> BranchProfile {
        BranchProfile::from_trace(events.iter().enumerate().map(|(i, &(b, t))| BranchRecord {
            branch: BranchId::new(b),
            taken: t,
            instr: i as u64,
        }))
    }

    #[test]
    fn empty_profile_gives_empty_curve() {
        assert!(curve(&BranchProfile::new()).is_empty());
    }

    #[test]
    fn curve_is_monotone_and_ends_at_totals() {
        // Branch 0: 4/4 taken; branch 1: 3/4 taken; branch 2: 2/4 taken.
        let mut evs = Vec::new();
        for i in 0..4 {
            evs.push((0, true));
            evs.push((1, i < 3));
            evs.push((2, i < 2));
        }
        let p = profile_of(&evs);
        let c = curve(&p);
        assert_eq!(c.len(), 3);
        for w in c.windows(2) {
            assert!(w[1].correct >= w[0].correct);
            assert!(w[1].incorrect >= w[0].incorrect);
        }
        let last = c.last().unwrap();
        // Total correct = 4 + 3 + 2 = 9 of 12; incorrect = 3 of 12.
        assert!((last.correct - 9.0 / 12.0).abs() < 1e-12);
        assert!((last.incorrect - 3.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn curve_orders_by_bias() {
        let mut evs = Vec::new();
        // Branch 0 is 50/50 and hot; branch 1 is 100% and cold.
        for _ in 0..50 {
            evs.push((0, true));
            evs.push((0, false));
        }
        for _ in 0..10 {
            evs.push((1, true));
        }
        let c = curve(&profile_of(&evs));
        // First point must be the perfectly biased branch: no misspecs yet.
        assert_eq!(c[0].incorrect, 0.0);
        assert!(c[0].correct > 0.0);
    }

    #[test]
    fn threshold_point_matches_manual_sum() {
        let mut evs = Vec::new();
        for i in 0..100 {
            evs.push((0, true)); // 100% biased
            evs.push((1, i % 2 == 0)); // 50%
        }
        let p = profile_of(&evs);
        let pt = threshold_point(&p, 0.99);
        assert!((pt.correct - 0.5).abs() < 1e-12);
        assert_eq!(pt.incorrect, 0.0);
    }

    #[test]
    fn threshold_point_lies_on_curve() {
        let mut evs = Vec::new();
        for i in 0..200u32 {
            evs.push((0, true));
            evs.push((1, i % 100 != 0)); // 99% biased
            evs.push((2, i % 4 != 0)); // 75%
        }
        let p = profile_of(&evs);
        let pt = threshold_point(&p, 0.99);
        let c = curve(&p);
        // The threshold point must coincide with some cumulative prefix.
        assert!(c.iter().any(|q| (q.correct - pt.correct).abs() < 1e-12
            && (q.incorrect - pt.incorrect).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn threshold_point_rejects_half() {
        threshold_point(&BranchProfile::new(), 0.5);
    }
}
