//! Per-branch execution profiles.

use rsc_trace::{BranchId, BranchRecord, Direction};

/// Taken/not-taken counts for every static branch seen in a trace.
///
/// This is the raw material of every *offline* control technique the paper
/// examines: self-training, cross-input profiling, and initial-behavior
/// training all reduce to building a `BranchProfile` over some window and
/// selecting branches from it.
///
/// # Examples
///
/// ```
/// use rsc_trace::{spec2000, InputId};
/// use rsc_profile::BranchProfile;
///
/// let pop = spec2000::benchmark("mcf").unwrap().population(50_000);
/// let profile = BranchProfile::from_trace(pop.trace(InputId::Eval, 50_000, 1));
/// assert_eq!(profile.events(), 50_000);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BranchProfile {
    taken: Vec<u64>,
    not_taken: Vec<u64>,
    events: u64,
    instructions: u64,
}

impl BranchProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        BranchProfile::default()
    }

    /// Creates an empty profile pre-sized for `branches` static branches.
    pub fn with_capacity(branches: usize) -> Self {
        BranchProfile {
            taken: vec![0; branches],
            not_taken: vec![0; branches],
            events: 0,
            instructions: 0,
        }
    }

    /// Accumulates an entire trace.
    pub fn from_trace<I: IntoIterator<Item = BranchRecord>>(trace: I) -> Self {
        let mut p = BranchProfile::new();
        for r in trace {
            p.record(&r);
        }
        p
    }

    /// Accumulates an entire trace through the chunked hot path
    /// ([`rsc_trace::Trace::fill`] into a reusable buffer, then
    /// [`record_chunk`](Self::record_chunk)).
    ///
    /// Bit-identical to [`from_trace`](Self::from_trace) on the same
    /// trace; it is simply faster.
    pub fn from_trace_chunked(trace: &mut rsc_trace::Trace<'_>) -> Self {
        let mut p = BranchProfile::new();
        let mut buf = vec![
            BranchRecord {
                branch: BranchId::new(0),
                taken: false,
                instr: 0
            };
            4096
        ];
        loop {
            let n = trace.fill(&mut buf);
            if n == 0 {
                break;
            }
            p.record_chunk(&buf[..n]);
        }
        p
    }

    /// Records one dynamic branch event.
    pub fn record(&mut self, r: &BranchRecord) {
        let idx = r.branch.index();
        if idx >= self.taken.len() {
            self.taken.resize(idx + 1, 0);
            self.not_taken.resize(idx + 1, 0);
        }
        if r.taken {
            self.taken[idx] += 1;
        } else {
            self.not_taken[idx] += 1;
        }
        self.events += 1;
        self.instructions = self.instructions.max(r.instr);
    }

    /// Records a chunk of dynamic branch events.
    ///
    /// Equivalent to calling [`record`](Self::record) on each record in
    /// order, but the count vectors are resized at most once per chunk and
    /// the accumulation loop touches no capacity checks.
    pub fn record_chunk(&mut self, records: &[BranchRecord]) {
        let max_idx = records.iter().map(|r| r.branch.index()).max();
        let Some(max_idx) = max_idx else { return };
        if max_idx >= self.taken.len() {
            self.taken.resize(max_idx + 1, 0);
            self.not_taken.resize(max_idx + 1, 0);
        }
        let mut instructions = self.instructions;
        for r in records {
            let idx = r.branch.index();
            if r.taken {
                self.taken[idx] += 1;
            } else {
                self.not_taken[idx] += 1;
            }
            instructions = instructions.max(r.instr);
        }
        self.instructions = instructions;
        self.events += records.len() as u64;
    }

    /// Merges another profile into this one (used for profile averaging).
    pub fn merge(&mut self, other: &BranchProfile) {
        if other.taken.len() > self.taken.len() {
            self.taken.resize(other.taken.len(), 0);
            self.not_taken.resize(other.not_taken.len(), 0);
        }
        for i in 0..other.taken.len() {
            self.taken[i] += other.taken[i];
            self.not_taken[i] += other.not_taken[i];
        }
        self.events += other.events;
        self.instructions = self.instructions.max(other.instructions);
    }

    /// Total dynamic branch events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Highest instruction count observed.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Number of branch slots (upper bound on touched branches).
    pub fn len(&self) -> usize {
        self.taken.len()
    }

    /// Returns `true` if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Executions of the branch at `idx`.
    pub fn executions(&self, idx: usize) -> u64 {
        if idx < self.taken.len() {
            self.taken[idx] + self.not_taken[idx]
        } else {
            0
        }
    }

    /// Taken count of the branch at `idx`.
    pub fn taken(&self, idx: usize) -> u64 {
        self.taken.get(idx).copied().unwrap_or(0)
    }

    /// Not-taken count of the branch at `idx`.
    pub fn not_taken(&self, idx: usize) -> u64 {
        self.not_taken.get(idx).copied().unwrap_or(0)
    }

    /// Bias (majority fraction) of the branch at `idx`, or `None` if it
    /// never executed.
    pub fn bias(&self, idx: usize) -> Option<f64> {
        let n = self.executions(idx);
        if n == 0 {
            return None;
        }
        let t = self.taken(idx);
        Some(t.max(n - t) as f64 / n as f64)
    }

    /// Majority direction of the branch at `idx` (ties break taken), or
    /// `None` if it never executed.
    pub fn majority(&self, idx: usize) -> Option<Direction> {
        let n = self.executions(idx);
        if n == 0 {
            return None;
        }
        Some(if self.taken(idx) * 2 >= n {
            Direction::Taken
        } else {
            Direction::NotTaken
        })
    }

    /// Number of branches that executed at least once.
    pub fn touched(&self) -> usize {
        (0..self.taken.len())
            .filter(|&i| self.executions(i) > 0)
            .count()
    }

    /// Iterates over `(BranchId, executions, bias)` of touched branches.
    pub fn iter_touched(&self) -> impl Iterator<Item = (BranchId, u64, f64)> + '_ {
        (0..self.taken.len()).filter_map(move |i| {
            let n = self.executions(i);
            if n == 0 {
                None
            } else {
                Some((BranchId::new(i as u32), n, self.bias(i).expect("n > 0")))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(b: u32, taken: bool, instr: u64) -> BranchRecord {
        BranchRecord {
            branch: BranchId::new(b),
            taken,
            instr,
        }
    }

    #[test]
    fn empty_profile_has_no_bias() {
        let p = BranchProfile::new();
        assert!(p.is_empty());
        assert_eq!(p.bias(0), None);
        assert_eq!(p.majority(0), None);
        assert_eq!(p.touched(), 0);
    }

    #[test]
    fn records_counts_and_majority() {
        let p = BranchProfile::from_trace(vec![
            rec(0, true, 1),
            rec(0, true, 2),
            rec(0, false, 3),
            rec(2, false, 4),
        ]);
        assert_eq!(p.events(), 4);
        assert_eq!(p.executions(0), 3);
        assert_eq!(p.taken(0), 2);
        assert_eq!(p.majority(0), Some(Direction::Taken));
        assert_eq!(p.majority(2), Some(Direction::NotTaken));
        assert_eq!(p.executions(1), 0);
        assert_eq!(p.touched(), 2);
        assert_eq!(p.instructions(), 4);
    }

    #[test]
    fn tie_breaks_taken() {
        let p = BranchProfile::from_trace(vec![rec(0, true, 1), rec(0, false, 2)]);
        assert_eq!(p.majority(0), Some(Direction::Taken));
        assert_eq!(p.bias(0), Some(0.5));
    }

    #[test]
    fn merge_adds_counts() {
        let a = BranchProfile::from_trace(vec![rec(0, true, 1), rec(1, false, 2)]);
        let b = BranchProfile::from_trace(vec![rec(0, true, 3), rec(3, true, 4)]);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.events(), 4);
        assert_eq!(m.executions(0), 2);
        assert_eq!(m.executions(3), 1);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn merge_smaller_into_larger_and_vice_versa() {
        let small = BranchProfile::from_trace(vec![rec(0, true, 1)]);
        let large = BranchProfile::from_trace(vec![rec(5, false, 1)]);
        let mut a = small.clone();
        a.merge(&large);
        let mut b = large;
        b.merge(&small);
        assert_eq!(a.executions(5), 1);
        assert_eq!(b.executions(0), 1);
    }

    #[test]
    fn iter_touched_skips_unexecuted() {
        let p = BranchProfile::from_trace(vec![rec(0, true, 1), rec(4, false, 2)]);
        let ids: Vec<usize> = p.iter_touched().map(|(b, _, _)| b.index()).collect();
        assert_eq!(ids, vec![0, 4]);
    }

    #[test]
    fn record_chunk_matches_per_record() {
        let records: Vec<BranchRecord> = (0..500u64)
            .map(|i| rec((i % 37) as u32, i % 3 == 0, i * 7))
            .collect();
        let mut per_record = BranchProfile::new();
        for r in &records {
            per_record.record(r);
        }
        for chunk_len in [1usize, 7, 64, 1000] {
            let mut chunked = BranchProfile::new();
            for chunk in records.chunks(chunk_len) {
                chunked.record_chunk(chunk);
            }
            assert_eq!(chunked, per_record, "chunk {chunk_len}");
        }
        // Empty chunks are no-ops.
        let mut p = per_record.clone();
        p.record_chunk(&[]);
        assert_eq!(p, per_record);
    }

    #[test]
    fn from_trace_chunked_matches_from_trace() {
        use rsc_trace::{spec2000, InputId};
        let pop = spec2000::benchmark("twolf").unwrap().population(30_000);
        let a = BranchProfile::from_trace(pop.trace(InputId::Eval, 30_000, 4));
        let b = BranchProfile::from_trace_chunked(&mut pop.trace(InputId::Eval, 30_000, 4));
        assert_eq!(a, b);
    }

    #[test]
    fn with_capacity_presizes() {
        let p = BranchProfile::with_capacity(16);
        assert_eq!(p.len(), 16);
        assert_eq!(p.touched(), 0);
    }
}
