//! Initial-behavior training: predicting a branch's lifetime bias from its
//! first N executions (the paper's Figure 2 "+" points).

use crate::profile::BranchProfile;
use rsc_trace::BranchRecord;

/// Builds a profile from only the first `n` executions of each branch.
///
/// The rest of the trace is consumed (so instruction/event totals remain
/// meaningful) but does not contribute to any branch's counts — exactly the
/// information available to a system that trains on initial behavior.
///
/// # Examples
///
/// ```
/// use rsc_trace::{spec2000, InputId};
/// use rsc_profile::initial;
///
/// let pop = spec2000::benchmark("gap").unwrap().population(30_000);
/// let p = initial::initial_profile(pop.trace(InputId::Eval, 30_000, 1), 100);
/// // No branch accumulates more than 100 profiled executions.
/// for i in 0..p.len() {
///     assert!(p.executions(i) <= 100);
/// }
/// ```
pub fn initial_profile<I: IntoIterator<Item = BranchRecord>>(trace: I, n: u64) -> BranchProfile {
    let mut profile = BranchProfile::new();
    let mut execs: Vec<u64> = Vec::new();
    for r in trace {
        let idx = r.branch.index();
        if idx >= execs.len() {
            execs.resize(idx + 1, 0);
        }
        if execs[idx] < n {
            execs[idx] += 1;
            profile.record(&r);
        }
    }
    profile
}

/// The paper's five initial-training lengths (1k, 10k, 100k, 300k, 1M
/// executions).
pub const PAPER_TRAINING_LENGTHS: [u64; 5] = [1_000, 10_000, 100_000, 300_000, 1_000_000];

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_trace::BranchId;

    fn rec(b: u32, taken: bool, instr: u64) -> BranchRecord {
        BranchRecord {
            branch: BranchId::new(b),
            taken,
            instr,
        }
    }

    #[test]
    fn caps_per_branch_executions() {
        let trace: Vec<_> = (0..100).map(|i| rec(0, true, i)).collect();
        let p = initial_profile(trace, 10);
        assert_eq!(p.executions(0), 10);
    }

    #[test]
    fn captures_initial_not_overall_bias() {
        // Taken for first 10, then not-taken for 90: initial profile with
        // n=10 sees a 100% taken-biased branch.
        let trace: Vec<_> = (0..100).map(|i| rec(0, i < 10, i)).collect();
        let p = initial_profile(trace, 10);
        assert_eq!(p.bias(0), Some(1.0));
        assert_eq!(p.taken(0), 10);
    }

    #[test]
    fn independent_caps_per_branch() {
        let mut trace = Vec::new();
        for i in 0..20 {
            trace.push(rec(0, true, 2 * i));
            trace.push(rec(1, false, 2 * i + 1));
        }
        let p = initial_profile(trace, 5);
        assert_eq!(p.executions(0), 5);
        assert_eq!(p.executions(1), 5);
    }

    #[test]
    fn zero_length_training_profiles_nothing() {
        let trace = vec![rec(0, true, 1)];
        let p = initial_profile(trace, 0);
        assert_eq!(p.executions(0), 0);
    }

    #[test]
    fn paper_training_lengths_are_increasing() {
        for w in PAPER_TRAINING_LENGTHS.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
