//! Cross-input profiling experiments (the paper's Figure 2 triangles).
//!
//! "Profiling from a previous run": build a profile on the training input,
//! select biased branches, evaluate on the evaluation input. The paper
//! shows this loses ~3× benefit and gains ~10× misspeculation compared to
//! self-training, because some predicates are input-dependent and some code
//! is exercised by only one input.

use crate::evaluate::{evaluate, SpecOutcome};
use crate::profile::BranchProfile;
use crate::select::SpeculationSet;
use rsc_trace::{InputId, Population};

/// Result of one cross-input experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossInputResult {
    /// Outcome when profiling and evaluating on the evaluation input
    /// (self-training reference).
    pub self_trained: SpecOutcome,
    /// Outcome when profiling on the profile input and evaluating on the
    /// evaluation input.
    pub cross_trained: SpecOutcome,
}

impl CrossInputResult {
    /// Ratio of self-trained to cross-trained correct speculation (the
    /// paper reports ~3× average benefit loss).
    pub fn benefit_loss_factor(&self) -> f64 {
        let cross = self.cross_trained.correct_frac();
        if cross == 0.0 {
            f64::INFINITY
        } else {
            self.self_trained.correct_frac() / cross
        }
    }

    /// Ratio of cross-trained to self-trained misspeculation (the paper
    /// reports ~10× average increase).
    pub fn misspec_gain_factor(&self) -> f64 {
        let own = self.self_trained.incorrect_frac();
        if own == 0.0 {
            f64::INFINITY
        } else {
            self.cross_trained.incorrect_frac() / own
        }
    }
}

/// Runs the paper's cross-input comparison on one benchmark population.
///
/// Both runs use `events` events; `threshold` is the selection bias
/// threshold (the paper uses 99%); `min_execs` filters branches with too
/// few profiled executions to classify.
pub fn cross_input_experiment(
    population: &Population,
    events: u64,
    seed: u64,
    threshold: f64,
    min_execs: u64,
) -> CrossInputResult {
    let eval_profile = BranchProfile::from_trace(population.trace(InputId::Eval, events, seed));
    let train_profile =
        BranchProfile::from_trace(population.trace(InputId::Profile, events, seed + 1));

    let self_set = SpeculationSet::from_profile(&eval_profile, threshold, min_execs);
    let cross_set = SpeculationSet::from_profile(&train_profile, threshold, min_execs);

    CrossInputResult {
        self_trained: evaluate(&self_set, population.trace(InputId::Eval, events, seed)),
        cross_trained: evaluate(&cross_set, population.trace(InputId::Eval, events, seed)),
    }
}

/// Averages `k` profiles of the profile input (different trace seeds) into
/// one, modeling the "average together a number of profiles" mitigation the
/// paper mentions: misspeculation drops, but input-dependent branches drop
/// out of the speculation set, reducing opportunity.
///
/// The `k` shards are independent traces, so they are accumulated on up to
/// [`rsc_util::parallel::max_threads`] worker threads (each through the
/// chunked hot path) and merged in seed order. Because
/// [`BranchProfile::merge`] only adds counts and takes maxima, the result
/// is bit-identical to the sequential accumulation regardless of thread
/// count.
pub fn averaged_profile(
    population: &Population,
    events: u64,
    base_seed: u64,
    k: u32,
) -> BranchProfile {
    assert!(k > 0, "need at least one profile");
    let seeds: Vec<u64> = (0..k).map(|i| base_seed + u64::from(i)).collect();
    let shards = rsc_util::parallel::par_map(seeds, |seed| {
        BranchProfile::from_trace_chunked(&mut population.trace(InputId::Profile, events, seed))
    });
    let mut merged = BranchProfile::new();
    for p in &shards {
        merged.merge(p);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_trace::spec2000;

    #[test]
    fn cross_input_degrades_on_input_dependent_benchmark() {
        // crafty has strong input dependence in our models, as in the paper.
        let pop = spec2000::benchmark("crafty").unwrap().population(60_000);
        let r = cross_input_experiment(&pop, 60_000, 7, 0.99, 16);
        assert!(
            r.cross_trained.incorrect_frac() > r.self_trained.incorrect_frac(),
            "cross-input profiling should misspeculate more: {:?}",
            r
        );
        assert!(
            r.cross_trained.correct_frac() < r.self_trained.correct_frac(),
            "cross-input profiling should find less benefit: {:?}",
            r
        );
    }

    #[test]
    fn factors_are_consistent_with_outcomes() {
        let pop = spec2000::benchmark("parser").unwrap().population(40_000);
        let r = cross_input_experiment(&pop, 40_000, 3, 0.99, 16);
        assert!(r.benefit_loss_factor() >= 1.0);
        assert!(r.misspec_gain_factor() >= 1.0);
    }

    #[test]
    fn averaged_profile_accumulates_events() {
        let pop = spec2000::benchmark("gzip").unwrap().population(10_000);
        let p = averaged_profile(&pop, 10_000, 1, 3);
        assert_eq!(p.events(), 30_000);
    }

    #[test]
    fn sharded_averaging_matches_sequential_reference() {
        let pop = spec2000::benchmark("vortex").unwrap().population(20_000);
        let reference = {
            let mut merged = BranchProfile::new();
            for i in 0..4u64 {
                merged.merge(&BranchProfile::from_trace(pop.trace(
                    InputId::Profile,
                    20_000,
                    9 + i,
                )));
            }
            merged
        };
        let parallel = averaged_profile(&pop, 20_000, 9, 4);
        assert_eq!(parallel, reference);

        // And independent of the thread cap.
        rsc_util::parallel::set_max_threads(1);
        let capped = averaged_profile(&pop, 20_000, 9, 4);
        rsc_util::parallel::set_max_threads(0);
        assert_eq!(capped, reference);
    }

    #[test]
    #[should_panic(expected = "at least one profile")]
    fn zero_profiles_panics() {
        let pop = spec2000::benchmark("gzip").unwrap().population(1_000);
        averaged_profile(&pop, 1_000, 1, 0);
    }
}
