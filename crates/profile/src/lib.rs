//! # rsc-profile — offline profiling substrate
//!
//! Implements the *non-reactive* speculation-control techniques the paper
//! uses as baselines (its Section 2):
//!
//! * [`BranchProfile`] — per-branch taken/not-taken accumulation;
//! * [`pareto`] — the self-training correct/incorrect trade-off curve
//!   (Figure 2's line) and bias-threshold points;
//! * [`SpeculationSet`] + [`evaluate`] — one-shot (open-loop) selection and
//!   its evaluation over a trace;
//! * [`offline`] — cross-input profiling experiments (Figure 2 triangles);
//! * [`initial`] — initial-behavior training (Figure 2 crosses).
//!
//! ```
//! use rsc_trace::{spec2000, InputId};
//! use rsc_profile::{pareto, BranchProfile};
//!
//! let pop = spec2000::benchmark("gcc").unwrap().population(50_000);
//! let profile = BranchProfile::from_trace(pop.trace(InputId::Eval, 50_000, 1));
//! let knee = pareto::threshold_point(&profile, 0.99);
//! // gcc: most dynamic branches sit on highly biased static branches.
//! assert!(knee.correct > 0.4);
//! assert!(knee.incorrect < 0.01);
//! ```

pub mod evaluate;
pub mod initial;
pub mod offline;
pub mod pareto;
pub mod profile;
pub mod select;

pub use evaluate::{evaluate as evaluate_set, SpecOutcome};
pub use pareto::ParetoPoint;
pub use profile::BranchProfile;
pub use select::SpeculationSet;
