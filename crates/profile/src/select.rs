//! Static speculation sets: which branches to speculate, and in which
//! direction.

use crate::profile::BranchProfile;
use rsc_trace::{BranchId, Direction};

/// A static decision table: for each branch, an optional speculated
/// direction.
///
/// This is what a non-reactive (open-loop) control technique produces once
/// and never revises — the paper's Section 2.2 baselines.
///
/// # Examples
///
/// ```
/// use rsc_trace::{spec2000, InputId};
/// use rsc_profile::{BranchProfile, SpeculationSet};
///
/// let pop = spec2000::benchmark("gzip").unwrap().population(50_000);
/// let profile = BranchProfile::from_trace(pop.trace(InputId::Eval, 50_000, 1));
/// let set = SpeculationSet::from_profile(&profile, 0.99, 1);
/// assert!(set.speculated_count() > 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpeculationSet {
    decisions: Vec<Option<Direction>>,
}

impl SpeculationSet {
    /// Creates an empty set (speculates on nothing).
    pub fn new() -> Self {
        SpeculationSet::default()
    }

    /// Selects every branch whose bias meets `threshold` over at least
    /// `min_execs` profiled executions, speculating in its majority
    /// direction.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0.5, 1.0]`.
    pub fn from_profile(profile: &BranchProfile, threshold: f64, min_execs: u64) -> Self {
        assert!(
            threshold > 0.5 && threshold <= 1.0,
            "threshold must be in (0.5, 1.0], got {threshold}"
        );
        let decisions = (0..profile.len())
            .map(|i| {
                let n = profile.executions(i);
                if n >= min_execs.max(1) {
                    let bias = profile.bias(i).expect("n >= 1");
                    if bias >= threshold {
                        return profile.majority(i);
                    }
                }
                None
            })
            .collect();
        SpeculationSet { decisions }
    }

    /// Sets the decision for one branch (used by tests and custom policies).
    pub fn set(&mut self, branch: BranchId, dir: Option<Direction>) {
        let idx = branch.index();
        if idx >= self.decisions.len() {
            self.decisions.resize(idx + 1, None);
        }
        self.decisions[idx] = dir;
    }

    /// The speculated direction for `branch`, if any.
    pub fn decision(&self, branch: BranchId) -> Option<Direction> {
        self.decisions.get(branch.index()).copied().flatten()
    }

    /// Number of branch slots.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Number of branches selected for speculation.
    pub fn speculated_count(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_some()).count()
    }

    /// Iterates over `(BranchId, Direction)` of selected branches.
    pub fn iter(&self) -> impl Iterator<Item = (BranchId, Direction)> + '_ {
        self.decisions
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|dir| (BranchId::new(i as u32), dir)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_trace::BranchRecord;

    fn profile_of(events: &[(u32, bool)]) -> BranchProfile {
        BranchProfile::from_trace(events.iter().enumerate().map(|(i, &(b, t))| BranchRecord {
            branch: BranchId::new(b),
            taken: t,
            instr: i as u64,
        }))
    }

    #[test]
    fn selects_only_biased_branches() {
        // Branch 0: 100% taken (4 execs). Branch 1: 50/50.
        let p = profile_of(&[
            (0, true),
            (0, true),
            (0, true),
            (0, true),
            (1, true),
            (1, false),
        ]);
        let set = SpeculationSet::from_profile(&p, 0.99, 1);
        assert_eq!(set.decision(BranchId::new(0)), Some(Direction::Taken));
        assert_eq!(set.decision(BranchId::new(1)), None);
        assert_eq!(set.speculated_count(), 1);
    }

    #[test]
    fn min_execs_filters_cold_branches() {
        let p = profile_of(&[(0, true), (1, true), (1, true), (1, true)]);
        let set = SpeculationSet::from_profile(&p, 0.99, 2);
        assert_eq!(set.decision(BranchId::new(0)), None, "one exec is too few");
        assert_eq!(set.decision(BranchId::new(1)), Some(Direction::Taken));
    }

    #[test]
    fn speculates_not_taken_majority() {
        let p = profile_of(&[(0, false), (0, false), (0, false)]);
        let set = SpeculationSet::from_profile(&p, 0.99, 1);
        assert_eq!(set.decision(BranchId::new(0)), Some(Direction::NotTaken));
    }

    #[test]
    fn threshold_is_inclusive() {
        // 3 of 4 taken = 0.75.
        let p = profile_of(&[(0, true), (0, true), (0, true), (0, false)]);
        let set = SpeculationSet::from_profile(&p, 0.75, 1);
        assert_eq!(set.decision(BranchId::new(0)), Some(Direction::Taken));
        let set = SpeculationSet::from_profile(&p, 0.76, 1);
        assert_eq!(set.decision(BranchId::new(0)), None);
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn rejects_bad_threshold() {
        SpeculationSet::from_profile(&BranchProfile::new(), 0.5, 1);
    }

    #[test]
    fn manual_set_and_out_of_range_decision() {
        let mut set = SpeculationSet::new();
        assert_eq!(set.decision(BranchId::new(10)), None);
        set.set(BranchId::new(10), Some(Direction::Taken));
        assert_eq!(set.decision(BranchId::new(10)), Some(Direction::Taken));
        set.set(BranchId::new(10), None);
        assert_eq!(set.speculated_count(), 0);
    }

    #[test]
    fn iter_yields_selected_pairs() {
        let mut set = SpeculationSet::new();
        set.set(BranchId::new(2), Some(Direction::NotTaken));
        set.set(BranchId::new(5), Some(Direction::Taken));
        let v: Vec<_> = set.iter().collect();
        assert_eq!(
            v,
            vec![
                (BranchId::new(2), Direction::NotTaken),
                (BranchId::new(5), Direction::Taken)
            ]
        );
    }
}
