//! Determinism contract for every adversary generator.
//!
//! The fuzz corpus (see the `rsc-fuzz` crate) stores scenarios as
//! `(scenario, events, seed)` triples and replays them later — possibly
//! on another machine — so each generator must be a pure function of
//! that triple: same seed and params give a byte-identical trace
//! (branch, outcome, *and* instruction counter), and different seeds
//! must diverge (the instruction-stride RNG is seeded too, so even
//! outcome-deterministic scenarios produce different records).

use rsc_trace::adversary::Scenario;

/// One instance of each of the 7 generator families.
const ALL: [Scenario; 7] = [
    Scenario::PhaseFlip {
        branches: 4,
        flip_after: 100,
    },
    Scenario::HysteresisStraddle {
        warmup: 10,
        period: 3,
    },
    Scenario::RevisitAlias { period: 30 },
    Scenario::ThresholdOscillator { window: 10 },
    Scenario::BurstyHotSet { hot: 3, burst: 64 },
    Scenario::UniformRandom { branches: 8 },
    Scenario::CorrelatedGroups {
        groups: 2,
        per_group: 3,
        flip_every: 50,
        churn: 200,
    },
];

#[test]
fn same_seed_and_params_are_byte_identical() {
    for s in ALL {
        for seed in [0, 1, 42, u64::MAX] {
            let a = s.generate(4_000, seed);
            let b = s.generate(4_000, seed);
            assert_eq!(a, b, "{} seed {seed}", s.name());
            assert_eq!(a.len(), 4_000, "{}", s.name());
        }
    }
}

#[test]
fn different_seeds_diverge_for_every_generator() {
    for s in ALL {
        let a = s.generate(4_000, 1);
        let b = s.generate(4_000, 2);
        // Full-record comparison: even scenarios whose *outcomes* are a
        // deterministic function of the execution index (PhaseFlip,
        // ThresholdOscillator) differ in their instruction strides.
        assert_ne!(a, b, "{} must be seed-sensitive", s.name());
    }
}

#[test]
fn trailing_events_do_not_depend_on_length() {
    // A prefix property the shrinker relies on: generating fewer events
    // yields a prefix of the longer trace.
    for s in ALL {
        let long = s.generate(2_000, 9);
        let short = s.generate(1_000, 9);
        assert_eq!(&long[..1_000], &short[..], "{}", s.name());
    }
}
