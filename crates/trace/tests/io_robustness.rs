//! Property-based robustness tests for the hardened trace reader: no
//! input — arbitrary garbage, truncations, bit flips, or lying length
//! headers — may ever panic, hang, or size an allocation from untrusted
//! bytes. Every outcome must be `Ok` or a typed [`TraceIoError`].
//!
//! The serve daemon feeds client-supplied payloads straight into this
//! decoder, so these properties are the first line of its fault
//! isolation: a malicious tenant can at worst earn itself a
//! `BadPayload` reject.

use proptest::prelude::*;
use rsc_trace::adversary::Scenario;
use rsc_trace::io::{read_trace, read_trace_with_limit, write_trace, TraceIoError};

/// A syntactically valid version-2 stream to mutate.
fn valid_trace(events: u64, seed: u64) -> Vec<u8> {
    let records = Scenario::UniformRandom { branches: 32 }.generate(events, seed);
    let mut buf = Vec::new();
    write_trace(&mut buf, records).expect("writing to a Vec cannot fail");
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary bytes decode to Ok or a typed error, never a panic.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_trace(&mut bytes.as_slice());
    }

    /// Same, with the magic and a plausible version prepended so the
    /// fuzz pressure lands on the length header and body decoding
    /// instead of bouncing off the magic check.
    #[test]
    fn garbage_after_a_valid_header_never_panics(
        version in 0u8..4,
        body in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut bytes = b"RSCT".to_vec();
        bytes.push(version);
        bytes.extend_from_slice(&body);
        let _ = read_trace(&mut bytes.as_slice());
    }

    /// Every strict truncation of a valid stream is a typed error.
    #[test]
    fn truncations_are_typed_errors(
        events in 1u64..200,
        seed in any::<u64>(),
        cut in any::<u64>(),
    ) {
        let mut buf = valid_trace(events, seed);
        let cut = (cut % buf.len() as u64) as usize;
        buf.truncate(cut);
        prop_assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    /// Any single bit flip in a version-2 stream is detected: the
    /// checksum footer covers every preceding byte, so damaged varints
    /// that still decode cannot smuggle altered events through.
    #[test]
    fn single_bit_flips_are_detected(
        events in 1u64..200,
        seed in any::<u64>(),
        pos in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut buf = valid_trace(events, seed);
        let pos = (pos % buf.len() as u64) as usize;
        buf[pos] ^= 1 << bit;
        prop_assert!(
            read_trace(&mut buf.as_slice()).is_err(),
            "flip at byte {pos} bit {bit} went undetected"
        );
    }

    /// A length header may claim anything; the reader bounds it before
    /// allocating and reports the claim faithfully.
    #[test]
    fn lying_length_headers_are_bounded_before_allocation(
        claimed in any::<u64>(),
        limit in 0u64..10_000,
    ) {
        // Hand-build `magic | version | count varint` with no body.
        let mut buf = b"RSCT".to_vec();
        buf.push(2);
        let mut v = claimed;
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                buf.push(byte);
                break;
            }
            buf.push(byte | 0x80);
        }
        match read_trace_with_limit(&mut buf.as_slice(), limit) {
            Err(TraceIoError::TooLong { count, limit: l }) => {
                prop_assert_eq!(count, claimed);
                prop_assert_eq!(l, limit);
                prop_assert!(claimed > limit);
            }
            Err(_) => prop_assert!(claimed <= limit, "in-bound claim got the wrong error"),
            Ok(records) => {
                prop_assert_eq!(claimed, 0);
                prop_assert!(records.is_empty());
            }
        }
    }

    /// The reader's event limit is exact on valid streams: everything at
    /// or under the limit round-trips, everything over is `TooLong`.
    #[test]
    fn limit_is_exact_on_valid_streams(
        events in 1u64..200,
        seed in any::<u64>(),
        slack in 0u64..100,
    ) {
        let buf = valid_trace(events, seed);
        let ok = read_trace_with_limit(&mut buf.as_slice(), events + slack);
        prop_assert_eq!(ok.unwrap().len() as u64, events);
        prop_assert!(matches!(
            read_trace_with_limit(&mut buf.as_slice(), events - 1),
            Err(TraceIoError::TooLong { .. })
        ));
    }
}
