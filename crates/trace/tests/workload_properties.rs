//! Property-based tests on the workload substrate.

use proptest::prelude::*;
use rsc_trace::alias::AliasTable;
use rsc_trace::behavior::{Behavior, Phase};
use rsc_trace::branch::StaticBranchSpec;
use rsc_trace::group::GroupSchedule;
use rsc_trace::model::Population;
use rsc_trace::rng::Xoshiro256;
use rsc_trace::zipf::zipf_weights;
use rsc_trace::{InputId, TraceStats};

/// Strategy for small but valid branch populations.
fn population() -> impl Strategy<Value = Population> {
    prop::collection::vec(
        (0.5f64..=1.0, 0.01f64..10.0, any::<bool>(), any::<bool>()),
        1..24,
    )
    .prop_map(|branches| {
        let specs: Vec<StaticBranchSpec> = branches
            .into_iter()
            .map(|(p, w, inv_dir, inv_prof)| {
                let mut s = StaticBranchSpec::new(Behavior::Fixed { p_taken: p }, w);
                s.invert_direction = inv_dir;
                s.invert_on_profile = inv_prof;
                s
            })
            .collect();
        Population::from_branches("prop", 6, specs, vec![])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A trace emits exactly the requested number of events, touches only
    /// valid branches, and advances instructions strictly monotonically.
    #[test]
    fn trace_shape_invariants(pop in population(), events in 1u64..4_000, seed in any::<u64>()) {
        let n_branches = pop.static_branches();
        let mut last_instr = 0;
        let mut count = 0;
        for r in pop.trace(InputId::Eval, events, seed) {
            prop_assert!(r.branch.index() < n_branches);
            prop_assert!(r.instr > last_instr);
            last_instr = r.instr;
            count += 1;
        }
        prop_assert_eq!(count, events);
    }

    /// Traces are deterministic in the seed and differ across seeds (for
    /// nontrivial lengths).
    #[test]
    fn trace_determinism(pop in population(), seed in any::<u64>()) {
        let a: Vec<_> = pop.trace(InputId::Eval, 256, seed).collect();
        let b: Vec<_> = pop.trace(InputId::Eval, 256, seed).collect();
        prop_assert_eq!(&a, &b);
        let c: Vec<_> = pop.trace(InputId::Eval, 256, seed.wrapping_add(1)).collect();
        prop_assert_ne!(&a, &c);
    }

    /// Empirical branch frequencies follow the weights (chebyshev-loose).
    #[test]
    fn weights_drive_frequencies(seed in any::<u64>()) {
        let specs = vec![
            StaticBranchSpec::new(Behavior::Fixed { p_taken: 1.0 }, 9.0),
            StaticBranchSpec::new(Behavior::Fixed { p_taken: 1.0 }, 1.0),
        ];
        let pop = Population::from_branches("w", 6, specs, vec![]);
        let events = 20_000;
        let hot = pop
            .trace(InputId::Eval, events, seed)
            .filter(|r| r.branch.index() == 0)
            .count() as f64;
        let frac = hot / events as f64;
        prop_assert!((frac - 0.9).abs() < 0.03, "hot fraction {frac}");
    }

    /// Alias tables never produce indexes for zero-weight entries.
    #[test]
    fn alias_respects_zero_weights(
        weights in prop::collection::vec(0.0f64..10.0, 2..32),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = Xoshiro256::seed_from(seed);
        for _ in 0..512 {
            let i = table.sample(&mut rng) as usize;
            prop_assert!(weights[i] > 0.0, "drew zero-weight index {i}");
        }
    }

    /// Zipf weights are positive, decreasing, and normalized.
    #[test]
    fn zipf_properties(n in 1usize..200, exp in 0.0f64..2.0, total in 0.1f64..10.0) {
        let w = zipf_weights(n, exp, total);
        prop_assert_eq!(w.len(), n);
        prop_assert!((w.iter().sum::<f64>() - total).abs() < 1e-6);
        for pair in w.windows(2) {
            prop_assert!(pair[0] >= pair[1] - 1e-12);
        }
        prop_assert!(w.iter().all(|&x| x > 0.0));
    }

    /// Group schedules partition the run: activity at any fraction equals
    /// the parity of passed boundaries.
    #[test]
    fn group_schedule_parity(bounds in prop::collection::vec(0.01f64..0.99, 0..6)) {
        let mut sorted = bounds.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let g = GroupSchedule::new(sorted.clone()).unwrap();
        for i in 0..20 {
            let frac = i as f64 / 20.0;
            let expected = sorted.iter().filter(|&&b| b <= frac).count() % 2 == 1;
            prop_assert_eq!(g.active_at_fraction(frac), expected);
        }
    }

    /// Outcome frequencies track the behavior's probability.
    #[test]
    fn outcomes_track_probability(p in 0.0f64..=1.0, seed in any::<u64>()) {
        let specs = vec![StaticBranchSpec::new(Behavior::Fixed { p_taken: p }, 1.0)];
        let pop = Population::from_branches("p", 6, specs, vec![]);
        let events = 8_000;
        let stats = TraceStats::from_trace(pop.trace(InputId::Eval, events, seed));
        let taken = (0..1)
            .map(|_| stats.executions(0))
            .map(|n| n as f64)
            .next()
            .unwrap();
        prop_assert_eq!(taken as u64, events);
        let bias = stats.bias(0).unwrap();
        let expected = p.max(1.0 - p);
        prop_assert!((bias - expected).abs() < 0.05, "bias {bias} vs {expected}");
    }

    /// Serialization round-trips any generated trace exactly.
    #[test]
    fn trace_io_roundtrip(pop in population(), events in 1u64..2_000, seed in any::<u64>()) {
        let original: Vec<_> = pop.trace(InputId::Eval, events, seed).collect();
        let mut buf = Vec::new();
        rsc_trace::io::write_trace(&mut buf, original.iter().copied()).unwrap();
        let back = rsc_trace::io::read_trace(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back, original);
    }

    /// `Trace::fill` with any chunk size reproduces the iterator stream
    /// exactly, reports accurate fill counts, and leaves the tail of the
    /// buffer untouched on the final short chunk.
    #[test]
    fn fill_matches_iterator_for_any_chunk_size(
        pop in population(),
        events in 1u64..3_000,
        chunk in 1usize..700,
        seed in any::<u64>(),
    ) {
        let expected: Vec<_> = pop.trace(InputId::Eval, events, seed).collect();
        let mut trace = pop.trace(InputId::Eval, events, seed);
        let mut buf = vec![
            rsc_trace::BranchRecord {
                branch: rsc_trace::BranchId::new(0),
                taken: false,
                instr: 0,
            };
            chunk
        ];
        let mut got = Vec::with_capacity(expected.len());
        loop {
            let n = trace.fill(&mut buf);
            prop_assert!(n <= chunk);
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        prop_assert_eq!(&got, &expected);
        // Exhausted traces keep returning 0.
        prop_assert_eq!(trace.fill(&mut buf), 0);
    }

    /// Interleaving `fill` chunks with single-record `next` calls still
    /// reproduces the stream: the two entry points share one cursor.
    #[test]
    fn fill_and_next_interleave_consistently(
        pop in population(),
        events in 1u64..2_000,
        chunk in 1usize..100,
        seed in any::<u64>(),
    ) {
        let expected: Vec<_> = pop.trace(InputId::Eval, events, seed).collect();
        let mut trace = pop.trace(InputId::Eval, events, seed);
        let mut buf = vec![
            rsc_trace::BranchRecord {
                branch: rsc_trace::BranchId::new(0),
                taken: false,
                instr: 0,
            };
            chunk
        ];
        let mut got = Vec::with_capacity(expected.len());
        let mut use_fill = seed % 2 == 0;
        while got.len() < expected.len() {
            if use_fill {
                let n = trace.fill(&mut buf);
                got.extend_from_slice(&buf[..n]);
            } else if let Some(r) = trace.next() {
                got.push(r);
            }
            use_fill = !use_fill;
        }
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(trace.next(), None);
    }

    /// Multi-phase behaviors respect phase boundaries exactly.
    #[test]
    fn multiphase_boundary_exactness(len1 in 1u64..500, p1 in 0u8..2, p2 in 0u8..2) {
        let b = Behavior::MultiPhase {
            phases: vec![
                Phase { len: len1, p_taken: p1 as f64 },
                Phase { len: u64::MAX, p_taken: p2 as f64 },
            ],
        };
        prop_assert_eq!(b.p_taken(len1 - 1, false), p1 as f64);
        prop_assert_eq!(b.p_taken(len1, false), p2 as f64);
    }
}
