//! Value-speculation workloads.
//!
//! The paper concentrates on conditional branches but notes that its
//! results are "qualitatively consistent with other program behaviors
//! (e.g., loads that produce invariant values and memory dependences)".
//! This module models that claim: a *load site* that usually produces the
//! same value is a speculation unit exactly like a biased branch — the
//! event's `taken` flag means "the loaded value matched the predicted
//! (invariant) value". The reactive controller consumes these events
//! unchanged.

use crate::behavior::{Behavior, Phase};
use crate::branch::StaticBranchSpec;
use crate::model::Population;
use crate::rng::Xoshiro256;
use crate::zipf::zipf_weights;

/// Parameters of a synthetic value-speculation workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueWorkloadSpec {
    /// Load sites whose value is effectively constant for the whole run
    /// (e.g., configuration globals, type tags of monomorphic objects).
    pub invariant_sites: u32,
    /// Sites whose value is *usually* the same (e.g., a default-heavy
    /// enum field).
    pub mostly_invariant_sites: u32,
    /// Sites whose constant changes once mid-run (e.g., a reloaded
    /// configuration value) — the value-speculation analogue of a bias
    /// flip.
    pub phase_change_sites: u32,
    /// Sites with genuinely varying values (pointer chasing, induction
    /// values).
    pub varying_sites: u32,
    /// Seed for deterministic instantiation.
    pub seed: u64,
}

impl ValueWorkloadSpec {
    /// A representative mixture.
    pub fn new() -> Self {
        ValueWorkloadSpec {
            invariant_sites: 120,
            mostly_invariant_sites: 80,
            phase_change_sites: 12,
            varying_sites: 200,
            seed: 0x10AD_5EED,
        }
    }

    /// Total load sites.
    pub fn total_sites(&self) -> u32 {
        self.invariant_sites
            + self.mostly_invariant_sites
            + self.phase_change_sites
            + self.varying_sites
    }

    /// Instantiates the workload as a [`Population`] whose events read as
    /// "load produced the predicted value" (`taken = true`) or not.
    ///
    /// `events_hint` scales phase-change points, as for branch models.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no sites.
    pub fn population(&self, events_hint: u64) -> Population {
        assert!(
            self.total_sites() > 0,
            "value workload needs at least one site"
        );
        let mut rng = Xoshiro256::seed_from(self.seed);
        let mut branches = Vec::with_capacity(self.total_sites() as usize);
        type MakeBehavior = fn(&mut Xoshiro256, u64) -> Behavior;
        let groups: [(u32, f64, MakeBehavior); 4] = [
            (self.invariant_sites, 0.45, |rng, _| Behavior::Fixed {
                p_taken: rng.gen_range_f64(0.998, 1.0),
            }),
            (self.mostly_invariant_sites, 0.20, |rng, _| {
                Behavior::Fixed {
                    p_taken: rng.gen_range_f64(0.95, 0.995),
                }
            }),
            (self.phase_change_sites, 0.10, |rng, execs| {
                let flip = (rng.gen_range_f64(0.2, 0.7) * execs.max(4) as f64) as u64;
                Behavior::MultiPhase {
                    phases: vec![
                        Phase {
                            len: flip.max(1),
                            p_taken: rng.gen_range_f64(0.998, 1.0),
                        },
                        // After the change the *old* prediction misses until
                        // re-learned; a last-value predictor then conforms
                        // again, so post-flip conformance is high but the
                        // transition is a hard break.
                        Phase {
                            len: u64::MAX,
                            p_taken: rng.gen_range_f64(0.0, 0.05),
                        },
                    ],
                }
            }),
            (self.varying_sites, 0.25, |rng, _| Behavior::Fixed {
                p_taken: rng.gen_range_f64(0.1, 0.7),
            }),
        ];
        for (count, share, make) in groups {
            if count == 0 {
                continue;
            }
            let weights = zipf_weights(count as usize, 0.7, share);
            for w in weights {
                let execs = (w * events_hint as f64) as u64;
                branches.push(StaticBranchSpec::new(make(&mut rng, execs), w));
            }
        }
        Population::from_branches("value-speculation", 6, branches, vec![])
    }
}

impl Default for ValueWorkloadSpec {
    fn default() -> Self {
        ValueWorkloadSpec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::InputId;
    use crate::stats::TraceStats;

    #[test]
    fn population_has_all_sites() {
        let spec = ValueWorkloadSpec::new();
        let pop = spec.population(100_000);
        assert_eq!(pop.static_branches() as u32, spec.total_sites());
        assert_eq!(pop.name(), "value-speculation");
    }

    #[test]
    fn invariant_sites_dominate_conformance() {
        let spec = ValueWorkloadSpec::new();
        let pop = spec.population(200_000);
        let stats = TraceStats::from_trace(pop.trace(InputId::Eval, 200_000, 1));
        // A large fraction of dynamic loads sit on highly conformant sites,
        // as with branch bias in Figure 2.
        let coverage = stats.dynamic_coverage_at_bias(0.99);
        assert!(coverage > 0.3, "invariant-value coverage {coverage:.2}");
    }

    #[test]
    fn instantiation_is_deterministic() {
        let spec = ValueWorkloadSpec::new();
        assert_eq!(
            spec.population(50_000).branches(),
            spec.population(50_000).branches()
        );
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn empty_spec_panics() {
        let spec = ValueWorkloadSpec {
            invariant_sites: 0,
            mostly_invariant_sites: 0,
            phase_change_sites: 0,
            varying_sites: 0,
            seed: 1,
        };
        spec.population(1_000);
    }
}
