//! Identifier newtypes shared across the workspace.

use std::fmt;

/// Identifies one static conditional branch within a benchmark model.
///
/// Branch ids are dense indices (`0..model.static_branches()`), which lets
/// consumers keep per-branch state in flat vectors.
///
/// # Examples
///
/// ```
/// use rsc_trace::BranchId;
/// let b = BranchId::new(7);
/// assert_eq!(b.index(), 7);
/// assert_eq!(format!("{b}"), "br7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BranchId(u32);

impl BranchId {
    /// Creates a branch id from a dense index.
    pub const fn new(index: u32) -> Self {
        BranchId(index)
    }

    /// Returns the dense index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for BranchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "br{}", self.0)
    }
}

impl From<u32> for BranchId {
    fn from(v: u32) -> Self {
        BranchId(v)
    }
}

/// Identifies one program input (data set) of a benchmark.
///
/// The paper profiles on one input and evaluates on another (its Table 1);
/// we model that with two inputs per benchmark. Input-dependent branches may
/// reverse direction between inputs, and some code regions are exercised by
/// only one input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InputId {
    /// The training/profiling input (Table 1 "Profile Input").
    Profile,
    /// The evaluation input (Table 1 "Evaluation Input").
    Eval,
}

impl InputId {
    /// All inputs, in declaration order.
    pub const ALL: [InputId; 2] = [InputId::Profile, InputId::Eval];

    /// Returns a stable small integer for stream derivation.
    pub const fn stream_id(self) -> u64 {
        match self {
            InputId::Profile => 1,
            InputId::Eval => 2,
        }
    }
}

impl fmt::Display for InputId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputId::Profile => f.write_str("profile"),
            InputId::Eval => f.write_str("eval"),
        }
    }
}

/// Identifies a correlated phase group (Figure 9 of the paper).
///
/// Branches in the same group change their bias behavior together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GroupId(u16);

impl GroupId {
    /// Creates a group id from a dense index.
    pub const fn new(index: u16) -> Self {
        GroupId(index)
    }

    /// Returns the dense index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grp{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn branch_id_roundtrip() {
        let b = BranchId::new(41);
        assert_eq!(b.index(), 41);
        assert_eq!(b.as_u32(), 41);
        assert_eq!(BranchId::from(41u32), b);
    }

    #[test]
    fn branch_id_ordering_follows_index() {
        assert!(BranchId::new(1) < BranchId::new(2));
    }

    #[test]
    fn ids_are_hashable() {
        let mut set = HashSet::new();
        set.insert(BranchId::new(1));
        set.insert(BranchId::new(1));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn input_stream_ids_are_distinct() {
        assert_ne!(InputId::Profile.stream_id(), InputId::Eval.stream_id());
    }

    #[test]
    fn display_forms() {
        assert_eq!(BranchId::new(3).to_string(), "br3");
        assert_eq!(GroupId::new(2).to_string(), "grp2");
        assert_eq!(InputId::Eval.to_string(), "eval");
        assert_eq!(InputId::Profile.to_string(), "profile");
    }
}
