//! Correlated phase groups (the paper's Figure 9).
//!
//! In vortex (and, to a lesser extent, about half of SPEC2000int) the paper
//! observes that static branches flip between biased and unbiased behavior
//! *in groups*: one program-level phase change moves many branches at once.
//! A [`GroupSchedule`] captures one such shared phase timeline.

/// A shared phase timeline for a set of correlated branches.
///
/// The schedule is expressed in *fractions of the total event stream* so
/// that workloads of any length exhibit the same macroscopic shape. The
/// group starts in the inactive phase and toggles at each boundary.
///
/// # Examples
///
/// ```
/// use rsc_trace::group::GroupSchedule;
/// let g = GroupSchedule::new(vec![0.25, 0.75]).unwrap();
/// assert!(!g.active_at_fraction(0.1));
/// assert!(g.active_at_fraction(0.5));
/// assert!(!g.active_at_fraction(0.9));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSchedule {
    boundaries: Vec<f64>,
}

/// Error returned for malformed group schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidScheduleError {
    what: &'static str,
}

impl std::fmt::Display for InvalidScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid group schedule: {}", self.what)
    }
}

impl std::error::Error for InvalidScheduleError {}

impl GroupSchedule {
    /// Creates a schedule from toggle boundaries in `(0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns an error if boundaries are not strictly increasing or fall
    /// outside `(0, 1)`.
    pub fn new(boundaries: Vec<f64>) -> Result<Self, InvalidScheduleError> {
        for pair in boundaries.windows(2) {
            if pair[0] >= pair[1] {
                return Err(InvalidScheduleError {
                    what: "boundaries must be strictly increasing",
                });
            }
        }
        if boundaries
            .iter()
            .any(|&b| !(0.0..1.0).contains(&b) || b == 0.0)
        {
            return Err(InvalidScheduleError {
                what: "boundaries must lie in (0, 1)",
            });
        }
        Ok(GroupSchedule { boundaries })
    }

    /// Returns the toggle boundaries.
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Returns whether the group is active at the given stream fraction.
    pub fn active_at_fraction(&self, frac: f64) -> bool {
        let passed = self.boundaries.iter().filter(|&&b| b <= frac).count();
        passed % 2 == 1
    }

    /// Converts the fractional boundaries into absolute event indexes for a
    /// run of `events` total events.
    pub fn absolute_boundaries(&self, events: u64) -> Vec<u64> {
        self.boundaries
            .iter()
            .map(|&b| (b * events as f64) as u64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_inactive_and_toggles() {
        let g = GroupSchedule::new(vec![0.2, 0.4, 0.6]).unwrap();
        assert!(!g.active_at_fraction(0.0));
        assert!(g.active_at_fraction(0.3));
        assert!(!g.active_at_fraction(0.5));
        assert!(g.active_at_fraction(0.99));
    }

    #[test]
    fn empty_schedule_is_always_inactive() {
        let g = GroupSchedule::new(vec![]).unwrap();
        assert!(!g.active_at_fraction(0.0));
        assert!(!g.active_at_fraction(1.0));
    }

    #[test]
    fn rejects_unsorted_and_out_of_range() {
        assert!(GroupSchedule::new(vec![0.5, 0.3]).is_err());
        assert!(GroupSchedule::new(vec![0.5, 0.5]).is_err());
        assert!(GroupSchedule::new(vec![0.0]).is_err());
        assert!(GroupSchedule::new(vec![1.0]).is_err());
        assert!(GroupSchedule::new(vec![-0.1]).is_err());
    }

    #[test]
    fn absolute_boundaries_scale_with_events() {
        let g = GroupSchedule::new(vec![0.25, 0.5]).unwrap();
        assert_eq!(g.absolute_boundaries(1000), vec![250, 500]);
        assert_eq!(g.absolute_boundaries(4), vec![1, 2]);
    }
}
