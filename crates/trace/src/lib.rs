//! # rsc-trace — synthetic branch-trace substrate
//!
//! The workload substrate for the reproduction of *Reactive Techniques for
//! Controlling Software Speculation* (Zilles & Neelakantam, CGO 2005).
//!
//! The paper evaluates speculation-control policies on the SPEC2000 integer
//! benchmarks. This crate replaces those proprietary binaries and inputs
//! with deterministic generative models: each benchmark is a population of
//! static branches drawn from behavior archetypes (stable bias, bias
//! reversal, induction-variable flips, correlated group phases, …) plus a
//! skewed execution-frequency distribution. Traces are bit-reproducible
//! functions of a `(benchmark, input, events, seed)` tuple.
//!
//! ## Quick start
//!
//! ```
//! use rsc_trace::{spec2000, InputId, TraceStats};
//!
//! let model = spec2000::benchmark("gcc").expect("gcc is built in");
//! let population = model.population(100_000);
//! let stats = TraceStats::from_trace(population.trace(InputId::Eval, 100_000, 42));
//! assert_eq!(stats.total_events(), 100_000);
//! // gcc is dominated by highly biased branches:
//! assert!(stats.dynamic_coverage_at_bias(0.99) > 0.4);
//! ```

pub mod adversary;
pub mod alias;
pub mod behavior;
pub mod branch;
pub mod group;
pub mod ids;
pub mod io;
pub mod model;
pub mod population;
pub mod record;
pub mod rng;
pub mod spec2000;
pub mod stats;
pub mod value;
pub mod workload;
pub mod zipf;

pub use adversary::Scenario;
pub use behavior::{Behavior, Phase};
pub use branch::StaticBranchSpec;
pub use group::GroupSchedule;
pub use ids::{BranchId, GroupId, InputId};
pub use model::{BenchmarkModel, PaperReference, Population};
pub use population::{AfterFlip, Archetype, PopulationGroup};
pub use record::{BranchRecord, Direction};
pub use stats::TraceStats;
pub use value::ValueWorkloadSpec;
pub use workload::Trace;
