//! Adversarial trace synthesis for differential conformance testing.
//!
//! The spec2000 models (see [`crate::spec2000`]) are tuned to look like
//! real programs; the generators here are tuned to *hurt controllers*.
//! Each [`Scenario`] targets one arc of the reactive FSM with behavior
//! the paper identifies as worst-case, or with periodicities chosen to
//! alias against the controller's own time constants:
//!
//! * [`Scenario::PhaseFlip`] — the Fig. 3 pathology: branches that are
//!   100% biased for a long stretch, then flip direction completely.
//!   Maximizes pressure on the eviction arc.
//! * [`Scenario::HysteresisStraddle`] — a misspeculation rate dialed to
//!   sit at the equilibrium of the asymmetric saturating counter, so the
//!   counter hovers just below its eviction threshold.
//! * [`Scenario::RevisitAlias`] — bias phases whose period matches the
//!   monitor-plus-revisit cycle, so classification keeps happening at
//!   phase boundaries.
//! * [`Scenario::ThresholdOscillator`] — bias alternating between just
//!   above and just below the selection threshold every monitoring
//!   window, driving enter/exit oscillation toward the disable cap.
//! * [`Scenario::BurstyHotSet`] — a small aliased hot set executing in
//!   exclusive bursts, each burst with a freshly drawn bias.
//! * [`Scenario::UniformRandom`] — an unstructured baseline that keeps
//!   the fuzzer honest about coverage it did not design for.
//! * [`Scenario::CorrelatedGroups`] — the paper's Fig. 9 dynamics:
//!   groups of branches whose biased intervals begin and end together,
//!   with group membership churning over time.
//!
//! All generation is a pure function of `(scenario, events, seed)` via
//! [`Xoshiro256`] forks, so any failure found by the conformance fuzzer
//! is replayable from three numbers.
//!
//! # Examples
//!
//! ```
//! use rsc_trace::adversary::Scenario;
//!
//! let s = Scenario::PhaseFlip { branches: 4, flip_after: 500 };
//! let a = s.generate(10_000, 7);
//! let b = s.generate(10_000, 7);
//! assert_eq!(a, b, "generation is deterministic");
//! assert_eq!(a.len(), 10_000);
//! ```

use crate::ids::BranchId;
use crate::record::BranchRecord;
use crate::rng::Xoshiro256;

/// One adversarial workload shape. Fields are the time constants the
/// scenario aliases against; the conformance campaign picks them to match
/// the controller parameters under test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scenario {
    /// `branches` round-robin branches, each perfectly biased taken until
    /// it has executed `flip_after (+ its index)` times, then perfectly
    /// biased the other way, flipping again every period thereafter.
    PhaseFlip {
        /// Number of static branches.
        branches: u32,
        /// Executions per branch between direction flips.
        flip_after: u64,
    },
    /// One dominant branch: perfectly taken for `warmup` executions (so
    /// the monitor classifies it biased), then misspeculating exactly
    /// once every `period` executions. Small periods walk the paper's
    /// asymmetric counter up to its eviction threshold in steps that
    /// straddle it — e.g. at +50/−1 a period of 2 visits `threshold − 1`
    /// exactly.
    HysteresisStraddle {
        /// Purely biased executions before the misses start; pick the
        /// monitoring period so classification happens first.
        warmup: u64,
        /// Executions between deliberate wrong-way outcomes.
        period: u64,
    },
    /// One branch alternating between a perfectly biased phase and a
    /// coin-flip phase, each `period` executions long. Matching `period`
    /// to `monitor_period + revisit_wait` lands every re-classification
    /// on a phase boundary.
    RevisitAlias {
        /// Length of each bias phase in executions.
        period: u64,
    },
    /// One branch alternating each `window` executions between fully
    /// biased and `9/10` biased — straddling any selection threshold in
    /// `(0.9, 1.0]` so consecutive monitoring windows disagree.
    ThresholdOscillator {
        /// Executions per bias regime (ideally the monitoring period).
        window: u64,
    },
    /// `hot` branches executing in exclusive bursts of `burst` events;
    /// each burst picks one branch and draws it a fresh bias from
    /// `{1.0, 0.99, 0.9, 0.5, 0.0}`.
    BurstyHotSet {
        /// Size of the hot set.
        hot: u32,
        /// Events per burst.
        burst: u64,
    },
    /// Unstructured baseline: uniform branch choice, one static bias per
    /// branch drawn from a U-shaped distribution.
    UniformRandom {
        /// Number of static branches.
        branches: u32,
    },
    /// Fig. 9 correlated flip dynamics: `groups * per_group` branches
    /// partitioned into `groups` groups. Every member of a group shares
    /// one bias direction and flips it at the same event boundary (every
    /// `flip_every` events, phase-offset per group), so the controller
    /// sees whole cohorts of biased branches invalidate together. Every
    /// `churn` events one randomly chosen branch migrates to a randomly
    /// chosen group (`churn = 0` disables migration). Outcomes carry 2%
    /// noise so streams are seed-sensitive.
    CorrelatedGroups {
        /// Number of correlated groups.
        groups: u32,
        /// Branches per group at initialization.
        per_group: u32,
        /// Events between group-wide direction flips.
        flip_every: u64,
        /// Events between single-branch group migrations (0 = never).
        churn: u64,
    },
}

impl Scenario {
    /// Short stable name, used in artifacts and progress output.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::PhaseFlip { .. } => "phase_flip",
            Scenario::HysteresisStraddle { .. } => "hysteresis_straddle",
            Scenario::RevisitAlias { .. } => "revisit_alias",
            Scenario::ThresholdOscillator { .. } => "threshold_oscillator",
            Scenario::BurstyHotSet { .. } => "bursty_hot_set",
            Scenario::UniformRandom { .. } => "uniform_random",
            Scenario::CorrelatedGroups { .. } => "correlated_groups",
        }
    }

    /// Generates `events` branch records deterministically from `seed`.
    ///
    /// The dynamic instruction counter advances by a random stride in
    /// `1..=8` per event (from its own RNG fork), so re-optimization
    /// deadlines land at irregular offsets relative to branch executions.
    pub fn generate(&self, events: u64, seed: u64) -> Vec<BranchRecord> {
        let root = Xoshiro256::seed_from(seed);
        let mut instr_rng = root.fork(0);
        let mut outcome_rng = root.fork(1);
        let mut mix_rng = root.fork(2);
        let mut instr = 0u64;
        let mut out = Vec::with_capacity(events as usize);
        let mut execs: Vec<u64> = Vec::new();
        let mut burst_state: Option<(u32, f64)> = None;
        let mut biases: Vec<f64> = Vec::new();
        let mut membership: Vec<u32> = Vec::new();

        for i in 0..events {
            instr += 1 + instr_rng.gen_range(8);
            let (branch, taken) = match *self {
                Scenario::PhaseFlip {
                    branches,
                    flip_after,
                } => {
                    let b = (i % u64::from(branches.max(1))) as u32;
                    grow(&mut execs, b);
                    let n = execs[b as usize];
                    execs[b as usize] += 1;
                    // Stagger flip points so branches don't move in
                    // lockstep with each other.
                    let period = flip_after.max(1) + u64::from(b);
                    (b, (n / period).is_multiple_of(2))
                }
                Scenario::HysteresisStraddle { warmup, period } => {
                    grow(&mut execs, 0);
                    let n = execs[0];
                    execs[0] += 1;
                    (0, n < warmup || !(n - warmup).is_multiple_of(period.max(1)))
                }
                Scenario::RevisitAlias { period } => {
                    grow(&mut execs, 0);
                    let n = execs[0];
                    execs[0] += 1;
                    let biased_phase = (n / period.max(1)).is_multiple_of(2);
                    (0, biased_phase || outcome_rng.gen_bool(0.5))
                }
                Scenario::ThresholdOscillator { window } => {
                    grow(&mut execs, 0);
                    let n = execs[0];
                    execs[0] += 1;
                    let pure = (n / window.max(1)).is_multiple_of(2);
                    // In the impure regime exactly every 10th execution
                    // goes the other way: point bias 0.9.
                    (0, pure || !n.is_multiple_of(10))
                }
                Scenario::BurstyHotSet { hot, burst } => {
                    if i % burst.max(1) == 0 || burst_state.is_none() {
                        let b = mix_rng.gen_range(u64::from(hot.max(1))) as u32;
                        let bias = [1.0, 0.99, 0.9, 0.5, 0.0][mix_rng.gen_range(5) as usize];
                        burst_state = Some((b, bias));
                    }
                    let (b, bias) = burst_state.unwrap();
                    (b, outcome_rng.gen_bool(bias))
                }
                Scenario::UniformRandom { branches } => {
                    let b = mix_rng.gen_range(u64::from(branches.max(1))) as u32;
                    grow(&mut biases, b);
                    if biases[b as usize].is_nan() {
                        // U-shaped: mostly near-deterministic branches
                        // with a mixed-behavior minority.
                        let u = mix_rng.next_f64();
                        biases[b as usize] = if u < 0.4 {
                            0.995 + 0.005 * mix_rng.next_f64()
                        } else if u < 0.8 {
                            0.005 * mix_rng.next_f64()
                        } else {
                            mix_rng.next_f64()
                        };
                    }
                    (b, outcome_rng.gen_bool(biases[b as usize]))
                }
                Scenario::CorrelatedGroups {
                    groups,
                    per_group,
                    flip_every,
                    churn,
                } => {
                    let groups = groups.max(1);
                    let total = u64::from(groups) * u64::from(per_group.max(1));
                    if membership.is_empty() {
                        membership = (0..total as u32).map(|b| b % groups).collect();
                    }
                    if churn > 0 && i > 0 && i.is_multiple_of(churn) {
                        let migrant = mix_rng.gen_range(total) as usize;
                        membership[migrant] = mix_rng.gen_range(u64::from(groups)) as u32;
                    }
                    let b = mix_rng.gen_range(total) as u32;
                    let g = membership[b as usize];
                    // Phase-offset per group so groups don't all flip at
                    // the same instant; within a group every member sees
                    // the same boundary.
                    let phase = i / flip_every.max(1) + u64::from(g);
                    let dir = phase.is_multiple_of(2);
                    (b, dir != outcome_rng.gen_bool(0.02))
                }
            };
            out.push(BranchRecord {
                branch: BranchId::new(branch),
                taken,
                instr,
            });
        }
        out
    }
}

/// Grows per-branch storage on demand. `u64` slots start at 0; `f64`
/// slots start at NaN ("bias not yet drawn").
fn grow<T: GrowDefault>(v: &mut Vec<T>, branch: u32) {
    let need = branch as usize + 1;
    if v.len() < need {
        v.resize(need, T::EMPTY);
    }
}

trait GrowDefault: Copy {
    const EMPTY: Self;
}

impl GrowDefault for u64 {
    const EMPTY: Self = 0;
}

impl GrowDefault for f64 {
    const EMPTY: Self = f64::NAN;
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Scenario; 7] = [
        Scenario::PhaseFlip {
            branches: 4,
            flip_after: 100,
        },
        Scenario::HysteresisStraddle {
            warmup: 10,
            period: 3,
        },
        Scenario::RevisitAlias { period: 30 },
        Scenario::ThresholdOscillator { window: 10 },
        Scenario::BurstyHotSet { hot: 3, burst: 64 },
        Scenario::UniformRandom { branches: 8 },
        Scenario::CorrelatedGroups {
            groups: 2,
            per_group: 3,
            flip_every: 50,
            churn: 200,
        },
    ];

    #[test]
    fn generation_is_deterministic_and_sized() {
        for s in ALL {
            let a = s.generate(5_000, 11);
            let b = s.generate(5_000, 11);
            assert_eq!(a, b, "{}", s.name());
            assert_eq!(a.len(), 5_000, "{}", s.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        for s in ALL {
            if matches!(
                s,
                Scenario::PhaseFlip { .. } | Scenario::ThresholdOscillator { .. }
            ) {
                continue; // fully deterministic in outcomes, only instr varies
            }
            let a = s.generate(5_000, 1);
            let b = s.generate(5_000, 2);
            assert_ne!(a, b, "{}", s.name());
        }
    }

    #[test]
    fn instruction_counter_is_strictly_increasing() {
        for s in ALL {
            let t = s.generate(2_000, 5);
            for w in t.windows(2) {
                assert!(w[0].instr < w[1].instr, "{}", s.name());
            }
        }
    }

    #[test]
    fn phase_flip_is_perfectly_biased_then_flips() {
        let s = Scenario::PhaseFlip {
            branches: 1,
            flip_after: 100,
        };
        let t = s.generate(250, 9);
        assert!(t[..100].iter().all(|r| r.taken));
        assert!(t[100..200].iter().all(|r| !r.taken));
        assert!(t[200..250].iter().all(|r| r.taken));
    }

    #[test]
    fn hysteresis_straddle_misses_on_schedule_after_warmup() {
        let s = Scenario::HysteresisStraddle {
            warmup: 20,
            period: 5,
        };
        let t = s.generate(100, 3);
        assert!(t[..20].iter().all(|r| r.taken));
        for (i, r) in t[20..].iter().enumerate() {
            assert_eq!(r.taken, i % 5 != 0);
        }
    }

    #[test]
    fn threshold_oscillator_alternates_window_bias() {
        let s = Scenario::ThresholdOscillator { window: 10 };
        let t = s.generate(40, 1);
        assert!(t[..10].iter().all(|r| r.taken));
        let second: Vec<bool> = t[10..20].iter().map(|r| r.taken).collect();
        assert_eq!(second.iter().filter(|&&x| !x).count(), 1);
    }

    #[test]
    fn correlated_groups_flip_together() {
        let s = Scenario::CorrelatedGroups {
            groups: 2,
            per_group: 3,
            flip_every: 200,
            churn: 0,
        };
        let t = s.generate(400, 17);
        assert!(t.iter().all(|r| r.branch.index() < 6));
        // With churn disabled, group(b) = b % 2 throughout. In the first
        // window group 0 is biased taken and group 1 not-taken; both flip
        // at event 200. Outcomes carry 2% noise, so check agreement rate.
        for (lo, hi, flipped) in [(0, 200, false), (200, 400, true)] {
            for g in 0..2u32 {
                let expect = (g == 0) != flipped;
                let (mut agree, mut n) = (0u32, 0u32);
                for r in &t[lo..hi] {
                    if r.branch.index() as u32 % 2 == g {
                        n += 1;
                        agree += u32::from(r.taken == expect);
                    }
                }
                assert!(n > 0);
                assert!(agree * 10 >= n * 9, "group {g} window {lo}..{hi}");
            }
        }
    }

    #[test]
    fn bursty_hot_set_runs_one_branch_per_burst() {
        let s = Scenario::BurstyHotSet { hot: 4, burst: 32 };
        let t = s.generate(320, 21);
        for chunk in t.chunks(32) {
            let b = chunk[0].branch;
            assert!(chunk.iter().all(|r| r.branch == b));
        }
    }
}
