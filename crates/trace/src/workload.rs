//! Trace generation: turning a [`Population`] into a dynamic event stream.

use crate::alias::AliasTable;
use crate::ids::{BranchId, InputId};
use crate::model::Population;
use crate::record::BranchRecord;
use crate::rng::Xoshiro256;

/// A deterministic iterator over [`BranchRecord`]s.
///
/// The stream interleaves static branches according to their per-input
/// weights (alias-method sampling), tracks each branch's execution index so
/// its [`Behavior`](crate::behavior::Behavior) can be evaluated, advances a
/// dynamic instruction counter with a small random gap per event, and keeps
/// correlated phase groups in sync with global stream position.
///
/// Two traces constructed with identical `(population, input, events, seed)`
/// produce identical streams.
///
/// # Examples
///
/// ```
/// use rsc_trace::{spec2000, InputId};
/// let model = spec2000::benchmark("gzip").unwrap();
/// let pop = model.population(10_000);
/// let n = pop.trace(InputId::Eval, 10_000, 1).count();
/// assert_eq!(n, 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct Trace<'a> {
    population: &'a Population,
    sampler: AliasTable,
    /// Maps sampler indexes back to branch ids (branches with zero weight on
    /// this input are excluded from the sampler).
    index_map: Vec<u32>,
    exec_counts: Vec<u64>,
    group_active: Vec<bool>,
    /// Sorted (event_index, group) toggle points.
    group_toggles: Vec<(u64, u16)>,
    toggle_cursor: usize,
    inverted: Vec<bool>,
    events: u64,
    emitted: u64,
    instr: u64,
    gap_base: u64,
    gap_spread: u64,
    rng: Xoshiro256,
}

impl<'a> Trace<'a> {
    /// Creates a trace over `events` branch events.
    ///
    /// # Panics
    ///
    /// Panics if no branch has positive weight on `input`.
    pub(crate) fn new(
        population: &'a Population,
        input: InputId,
        events: u64,
        seed: u64,
    ) -> Self {
        let mut weights = Vec::new();
        let mut index_map = Vec::new();
        for (i, b) in population.branches().iter().enumerate() {
            let w = b.weight(input);
            if w > 0.0 {
                weights.push(w);
                index_map.push(i as u32);
            }
        }
        let sampler = AliasTable::new(&weights)
            .expect("population must carry weight on the selected input");

        let mut group_toggles = Vec::new();
        for (g, schedule) in population.phase_groups().iter().enumerate() {
            for b in schedule.absolute_boundaries(events) {
                group_toggles.push((b, g as u16));
            }
        }
        group_toggles.sort_unstable();

        let inverted = population
            .branches()
            .iter()
            .map(|b| b.inverted(input))
            .collect();

        let ipb = population.instr_per_branch().max(1) as u64;
        let rng = Xoshiro256::seed_from(seed)
            .fork(input.stream_id())
            .fork(events);

        Trace {
            population,
            sampler,
            index_map,
            exec_counts: vec![0; population.static_branches()],
            group_active: vec![false; population.phase_groups().len()],
            group_toggles,
            toggle_cursor: 0,
            inverted,
            events,
            emitted: 0,
            instr: 0,
            // Gap in [ceil(ipb/2), ceil(ipb/2) + ipb) has mean ~ipb.
            gap_base: ipb.div_ceil(2),
            gap_spread: ipb,
            rng,
        }
    }

    /// Total number of events this trace will produce.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Events produced so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The population this trace draws from.
    pub fn population(&self) -> &Population {
        self.population
    }
}

impl Iterator for Trace<'_> {
    type Item = BranchRecord;

    #[inline]
    fn next(&mut self) -> Option<BranchRecord> {
        if self.emitted >= self.events {
            return None;
        }
        // Advance correlated group phases that toggle at this position.
        while self.toggle_cursor < self.group_toggles.len()
            && self.group_toggles[self.toggle_cursor].0 <= self.emitted
        {
            let (_, g) = self.group_toggles[self.toggle_cursor];
            self.group_active[g as usize] = !self.group_active[g as usize];
            self.toggle_cursor += 1;
        }

        let slot = self.sampler.sample(&mut self.rng) as usize;
        let idx = self.index_map[slot] as usize;
        let branch = &self.population.branches()[idx];
        let exec = self.exec_counts[idx];
        self.exec_counts[idx] += 1;

        let group_active = branch
            .group
            .map(|g| self.group_active[g.index()])
            .unwrap_or(false);
        let p = branch.behavior.p_taken(exec, group_active);
        let mut taken = self.rng.gen_bool(p);
        if self.inverted[idx] {
            taken = !taken;
        }

        self.instr += self.gap_base + self.rng.gen_range(self.gap_spread);
        self.emitted += 1;

        Some(BranchRecord { branch: BranchId::new(idx as u32), taken, instr: self.instr })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.events - self.emitted) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for Trace<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Behavior;
    use crate::branch::StaticBranchSpec;
    use crate::group::GroupSchedule;
    use crate::ids::GroupId;
    use crate::model::Population;

    fn two_branch_pop() -> Population {
        Population::from_branches(
            "test",
            6,
            vec![
                StaticBranchSpec::new(Behavior::Fixed { p_taken: 1.0 }, 3.0),
                StaticBranchSpec::new(Behavior::Fixed { p_taken: 0.0 }, 1.0),
            ],
            vec![],
        )
    }

    #[test]
    fn produces_exactly_n_events() {
        let pop = two_branch_pop();
        let trace = pop.trace(InputId::Eval, 1000, 1);
        assert_eq!(trace.events(), 1000);
        assert_eq!(trace.count(), 1000);
    }

    #[test]
    fn is_deterministic() {
        let pop = two_branch_pop();
        let a: Vec<_> = pop.trace(InputId::Eval, 500, 9).collect();
        let b: Vec<_> = pop.trace(InputId::Eval, 500, 9).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let pop = two_branch_pop();
        let a: Vec<_> = pop.trace(InputId::Eval, 500, 1).collect();
        let b: Vec<_> = pop.trace(InputId::Eval, 500, 2).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn weights_control_interleaving() {
        let pop = two_branch_pop();
        let hot = pop
            .trace(InputId::Eval, 40_000, 3)
            .filter(|r| r.branch.index() == 0)
            .count();
        let frac = hot as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn outcomes_follow_behavior() {
        let pop = two_branch_pop();
        for r in pop.trace(InputId::Eval, 5000, 4) {
            if r.branch.index() == 0 {
                assert!(r.taken);
            } else {
                assert!(!r.taken);
            }
        }
    }

    #[test]
    fn instruction_counter_is_monotone_with_plausible_mean() {
        let pop = two_branch_pop();
        let recs: Vec<_> = pop.trace(InputId::Eval, 10_000, 5).collect();
        let mut last = 0;
        for r in &recs {
            assert!(r.instr > last);
            last = r.instr;
        }
        let mean = last as f64 / 10_000.0;
        assert!((5.0..9.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn inverted_branch_flips_outcomes_on_profile_input() {
        let mut spec = StaticBranchSpec::new(Behavior::Fixed { p_taken: 1.0 }, 1.0);
        spec.invert_on_profile = true;
        let pop = Population::from_branches("inv", 6, vec![spec], vec![]);
        assert!(pop.trace(InputId::Eval, 100, 1).all(|r| r.taken));
        assert!(pop.trace(InputId::Profile, 100, 1).all(|r| !r.taken));
    }

    #[test]
    fn zero_weight_branches_are_skipped_per_input() {
        let mut a = StaticBranchSpec::new(Behavior::Fixed { p_taken: 1.0 }, 1.0);
        a.profile_weight = 0.0;
        let b = StaticBranchSpec::new(Behavior::Fixed { p_taken: 0.5 }, 1.0);
        let pop = Population::from_branches("cov", 6, vec![a, b], vec![]);
        assert!(pop
            .trace(InputId::Profile, 2000, 2)
            .all(|r| r.branch.index() == 1));
        let eval_zero = pop
            .trace(InputId::Eval, 2000, 2)
            .filter(|r| r.branch.index() == 0)
            .count();
        assert!(eval_zero > 0);
    }

    #[test]
    fn group_phase_toggles_mid_trace() {
        let mut spec = StaticBranchSpec::new(
            Behavior::Grouped { in_phase: 0.0, out_phase: 1.0 },
            1.0,
        );
        spec.group = Some(GroupId::new(0));
        let pop = Population::from_branches(
            "grp",
            6,
            vec![spec],
            vec![GroupSchedule::new(vec![0.5]).unwrap()],
        );
        let recs: Vec<_> = pop.trace(InputId::Eval, 1000, 7).collect();
        assert!(recs[..500].iter().all(|r| r.taken));
        assert!(recs[500..].iter().all(|r| !r.taken));
    }

    #[test]
    fn exact_size_iterator_contract() {
        let pop = two_branch_pop();
        let mut t = pop.trace(InputId::Eval, 10, 1);
        assert_eq!(t.len(), 10);
        t.next();
        assert_eq!(t.len(), 9);
    }
}
