//! Trace generation: turning a [`Population`] into a dynamic event stream.

use crate::alias::AliasTable;
use crate::behavior::Behavior;
use crate::ids::{BranchId, InputId};
use crate::model::Population;
use crate::record::BranchRecord;
use crate::rng::Xoshiro256;

/// Per-branch fast-path dispatch, precomputed at trace construction so the
/// per-event loop does not re-match the full [`Behavior`] enum for the
/// overwhelmingly common stationary branches.
#[derive(Debug, Clone, Copy)]
enum OutcomeDispatch {
    /// Stationary probability: no execution-index or group dependence.
    Fixed(f64),
    /// Anything else: evaluate the behavior per event.
    General,
}

/// Hot per-branch state, merged into one record so the per-event loop does
/// a single indexed load instead of walking three parallel arrays.
#[derive(Debug, Clone, Copy)]
struct HotBranch {
    exec: u64,
    dispatch: OutcomeDispatch,
    inverted: bool,
}

/// A deterministic iterator over [`BranchRecord`]s.
///
/// The stream interleaves static branches according to their per-input
/// weights (alias-method sampling), tracks each branch's execution index so
/// its [`Behavior`](crate::behavior::Behavior) can be evaluated, advances a
/// dynamic instruction counter with a small random gap per event, and keeps
/// correlated phase groups in sync with global stream position.
///
/// Two traces constructed with identical `(population, input, events, seed)`
/// produce identical streams.
///
/// # Examples
///
/// ```
/// use rsc_trace::{spec2000, InputId};
/// let model = spec2000::benchmark("gzip").unwrap();
/// let pop = model.population(10_000);
/// let n = pop.trace(InputId::Eval, 10_000, 1).count();
/// assert_eq!(n, 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct Trace<'a> {
    population: &'a Population,
    sampler: AliasTable,
    /// Maps sampler indexes back to branch ids (branches with zero weight on
    /// this input are excluded from the sampler).
    index_map: Vec<u32>,
    hot: Vec<HotBranch>,
    group_active: Vec<bool>,
    /// Sorted (event_index, group) toggle points.
    group_toggles: Vec<(u64, u16)>,
    toggle_cursor: usize,
    events: u64,
    emitted: u64,
    instr: u64,
    gap_base: u64,
    gap_spread: u64,
    rng: Xoshiro256,
}

impl<'a> Trace<'a> {
    /// Creates a trace over `events` branch events.
    ///
    /// # Panics
    ///
    /// Panics if no branch has positive weight on `input`.
    pub(crate) fn new(population: &'a Population, input: InputId, events: u64, seed: u64) -> Self {
        let mut weights = Vec::new();
        let mut index_map = Vec::new();
        for (i, b) in population.branches().iter().enumerate() {
            let w = b.weight(input);
            if w > 0.0 {
                weights.push(w);
                index_map.push(i as u32);
            }
        }
        let sampler =
            AliasTable::new(&weights).expect("population must carry weight on the selected input");

        let mut group_toggles = Vec::new();
        for (g, schedule) in population.phase_groups().iter().enumerate() {
            for b in schedule.absolute_boundaries(events) {
                group_toggles.push((b, g as u16));
            }
        }
        group_toggles.sort_unstable();

        let hot = population
            .branches()
            .iter()
            .map(|b| HotBranch {
                exec: 0,
                dispatch: match b.behavior {
                    Behavior::Fixed { p_taken } => OutcomeDispatch::Fixed(p_taken),
                    _ => OutcomeDispatch::General,
                },
                inverted: b.inverted(input),
            })
            .collect();

        let ipb = population.instr_per_branch().max(1) as u64;
        let rng = Xoshiro256::seed_from(seed)
            .fork(input.stream_id())
            .fork(events);

        Trace {
            population,
            sampler,
            index_map,
            hot,
            group_active: vec![false; population.phase_groups().len()],
            group_toggles,
            toggle_cursor: 0,
            events,
            emitted: 0,
            instr: 0,
            // Gap in [ceil(ipb/2), ceil(ipb/2) + ipb) has mean ~ipb.
            gap_base: ipb.div_ceil(2),
            gap_spread: ipb,
            rng,
        }
    }

    /// Total number of events this trace will produce.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Events produced so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The population this trace draws from.
    pub fn population(&self) -> &Population {
        self.population
    }

    /// Fills `buf` with the next events of the stream, returning how many
    /// were written (less than `buf.len()` only at end of trace).
    ///
    /// This is the allocation-free hot path: the caller owns and reuses the
    /// buffer, hot loop state lives in locals, and the behavior dispatch
    /// for stationary branches is precomputed. The stream is **bit
    /// identical** to consuming the [`Iterator`] one event at a time — the
    /// per-event path is a thin wrapper over this method — so chunk size
    /// never changes any downstream result.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsc_trace::{spec2000, BranchId, BranchRecord, InputId};
    /// let pop = spec2000::benchmark("gzip").unwrap().population(10_000);
    /// let mut trace = pop.trace(InputId::Eval, 10_000, 1);
    /// let mut buf =
    ///     [BranchRecord { branch: BranchId::new(0), taken: false, instr: 0 }; 256];
    /// let mut total = 0;
    /// loop {
    ///     let n = trace.fill(&mut buf);
    ///     if n == 0 {
    ///         break;
    ///     }
    ///     total += n;
    /// }
    /// assert_eq!(total, 10_000);
    /// ```
    pub fn fill(&mut self, buf: &mut [BranchRecord]) -> usize {
        let remaining = self.events - self.emitted;
        let n = (buf.len() as u64).min(remaining) as usize;
        if n == 0 {
            return 0;
        }

        // Split the borrow of `self` into per-field borrows and hoist the
        // scalar loop state into locals.
        let Trace {
            population,
            sampler,
            index_map,
            hot,
            group_active,
            group_toggles,
            toggle_cursor,
            emitted,
            instr,
            gap_base,
            gap_spread,
            rng,
            ..
        } = self;
        let branches = population.branches();
        let (gap_base, gap_spread) = (*gap_base, *gap_spread);
        let mut cursor = *toggle_cursor;
        let mut emit = *emitted;
        let mut pos = *instr;

        for out in &mut buf[..n] {
            // Advance correlated group phases that toggle at this position.
            while cursor < group_toggles.len() && group_toggles[cursor].0 <= emit {
                let (_, g) = group_toggles[cursor];
                group_active[g as usize] = !group_active[g as usize];
                cursor += 1;
            }

            let slot = sampler.sample(rng) as usize;
            let idx = index_map[slot] as usize;
            let h = &mut hot[idx];
            let exec = h.exec;
            h.exec = exec + 1;
            let inv = h.inverted;

            let p = match h.dispatch {
                OutcomeDispatch::Fixed(p) => p,
                OutcomeDispatch::General => {
                    let branch = &branches[idx];
                    let active = branch
                        .group
                        .map(|g| group_active[g.index()])
                        .unwrap_or(false);
                    branch.behavior.p_taken(exec, active)
                }
            };
            let taken = rng.gen_bool(p) != inv;

            pos += gap_base + rng.gen_range(gap_spread);
            emit += 1;

            *out = BranchRecord {
                branch: BranchId::new(idx as u32),
                taken,
                instr: pos,
            };
        }

        *toggle_cursor = cursor;
        *emitted = emit;
        *instr = pos;
        n
    }
}

impl Iterator for Trace<'_> {
    type Item = BranchRecord;

    /// Thin wrapper over [`Trace::fill`] with a one-event buffer, so the
    /// per-event and chunked paths share a single generation routine (and
    /// therefore cannot diverge).
    #[inline]
    fn next(&mut self) -> Option<BranchRecord> {
        let mut buf = [BranchRecord {
            branch: BranchId::new(0),
            taken: false,
            instr: 0,
        }];
        if self.fill(&mut buf) == 1 {
            Some(buf[0])
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.events - self.emitted) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for Trace<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Behavior;
    use crate::branch::StaticBranchSpec;
    use crate::group::GroupSchedule;
    use crate::ids::GroupId;
    use crate::model::Population;

    fn two_branch_pop() -> Population {
        Population::from_branches(
            "test",
            6,
            vec![
                StaticBranchSpec::new(Behavior::Fixed { p_taken: 1.0 }, 3.0),
                StaticBranchSpec::new(Behavior::Fixed { p_taken: 0.0 }, 1.0),
            ],
            vec![],
        )
    }

    #[test]
    fn produces_exactly_n_events() {
        let pop = two_branch_pop();
        let trace = pop.trace(InputId::Eval, 1000, 1);
        assert_eq!(trace.events(), 1000);
        assert_eq!(trace.count(), 1000);
    }

    #[test]
    fn is_deterministic() {
        let pop = two_branch_pop();
        let a: Vec<_> = pop.trace(InputId::Eval, 500, 9).collect();
        let b: Vec<_> = pop.trace(InputId::Eval, 500, 9).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let pop = two_branch_pop();
        let a: Vec<_> = pop.trace(InputId::Eval, 500, 1).collect();
        let b: Vec<_> = pop.trace(InputId::Eval, 500, 2).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn weights_control_interleaving() {
        let pop = two_branch_pop();
        let hot = pop
            .trace(InputId::Eval, 40_000, 3)
            .filter(|r| r.branch.index() == 0)
            .count();
        let frac = hot as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn outcomes_follow_behavior() {
        let pop = two_branch_pop();
        for r in pop.trace(InputId::Eval, 5000, 4) {
            if r.branch.index() == 0 {
                assert!(r.taken);
            } else {
                assert!(!r.taken);
            }
        }
    }

    #[test]
    fn instruction_counter_is_monotone_with_plausible_mean() {
        let pop = two_branch_pop();
        let recs: Vec<_> = pop.trace(InputId::Eval, 10_000, 5).collect();
        let mut last = 0;
        for r in &recs {
            assert!(r.instr > last);
            last = r.instr;
        }
        let mean = last as f64 / 10_000.0;
        assert!((5.0..9.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn inverted_branch_flips_outcomes_on_profile_input() {
        let mut spec = StaticBranchSpec::new(Behavior::Fixed { p_taken: 1.0 }, 1.0);
        spec.invert_on_profile = true;
        let pop = Population::from_branches("inv", 6, vec![spec], vec![]);
        assert!(pop.trace(InputId::Eval, 100, 1).all(|r| r.taken));
        assert!(pop.trace(InputId::Profile, 100, 1).all(|r| !r.taken));
    }

    #[test]
    fn zero_weight_branches_are_skipped_per_input() {
        let mut a = StaticBranchSpec::new(Behavior::Fixed { p_taken: 1.0 }, 1.0);
        a.profile_weight = 0.0;
        let b = StaticBranchSpec::new(Behavior::Fixed { p_taken: 0.5 }, 1.0);
        let pop = Population::from_branches("cov", 6, vec![a, b], vec![]);
        assert!(pop
            .trace(InputId::Profile, 2000, 2)
            .all(|r| r.branch.index() == 1));
        let eval_zero = pop
            .trace(InputId::Eval, 2000, 2)
            .filter(|r| r.branch.index() == 0)
            .count();
        assert!(eval_zero > 0);
    }

    #[test]
    fn group_phase_toggles_mid_trace() {
        let mut spec = StaticBranchSpec::new(
            Behavior::Grouped {
                in_phase: 0.0,
                out_phase: 1.0,
            },
            1.0,
        );
        spec.group = Some(GroupId::new(0));
        let pop = Population::from_branches(
            "grp",
            6,
            vec![spec],
            vec![GroupSchedule::new(vec![0.5]).unwrap()],
        );
        let recs: Vec<_> = pop.trace(InputId::Eval, 1000, 7).collect();
        assert!(recs[..500].iter().all(|r| r.taken));
        assert!(recs[500..].iter().all(|r| !r.taken));
    }

    #[test]
    fn exact_size_iterator_contract() {
        let pop = two_branch_pop();
        let mut t = pop.trace(InputId::Eval, 10, 1);
        assert_eq!(t.len(), 10);
        t.next();
        assert_eq!(t.len(), 9);
    }

    fn zero_rec() -> BranchRecord {
        BranchRecord {
            branch: BranchId::new(0),
            taken: false,
            instr: 0,
        }
    }

    #[test]
    fn fill_is_bit_identical_to_iterator() {
        let pop = two_branch_pop();
        let reference: Vec<_> = pop.trace(InputId::Eval, 5_000, 11).collect();
        for chunk in [1usize, 7, 64, 1000, 8192] {
            let mut t = pop.trace(InputId::Eval, 5_000, 11);
            let mut buf = vec![zero_rec(); chunk];
            let mut got = Vec::new();
            loop {
                let n = t.fill(&mut buf);
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            assert_eq!(got, reference, "chunk size {chunk}");
        }
    }

    #[test]
    fn fill_interleaves_with_iterator_consumption() {
        let pop = two_branch_pop();
        let reference: Vec<_> = pop.trace(InputId::Eval, 1_000, 13).collect();
        let mut t = pop.trace(InputId::Eval, 1_000, 13);
        let mut got = Vec::new();
        let mut buf = vec![zero_rec(); 97];
        while got.len() < 1_000 {
            if got.len() % 2 == 0 {
                let n = t.fill(&mut buf);
                got.extend_from_slice(&buf[..n]);
            } else if let Some(r) = t.next() {
                got.push(r);
            }
        }
        assert_eq!(got, reference);
    }

    #[test]
    fn fill_handles_empty_buffer_and_exhaustion() {
        let pop = two_branch_pop();
        let mut t = pop.trace(InputId::Eval, 10, 1);
        assert_eq!(t.fill(&mut []), 0);
        let mut buf = vec![zero_rec(); 64];
        assert_eq!(t.fill(&mut buf), 10);
        assert_eq!(t.fill(&mut buf), 0);
        assert_eq!(t.next(), None);
        assert_eq!(t.emitted(), 10);
    }

    #[test]
    fn fill_respects_group_toggles_across_chunk_boundaries() {
        let mut spec = StaticBranchSpec::new(
            Behavior::Grouped {
                in_phase: 0.0,
                out_phase: 1.0,
            },
            1.0,
        );
        spec.group = Some(GroupId::new(0));
        let pop = Population::from_branches(
            "grp",
            6,
            vec![spec],
            vec![GroupSchedule::new(vec![0.5]).unwrap()],
        );
        // Chunk size 333 straddles the toggle at event 500.
        let mut t = pop.trace(InputId::Eval, 1000, 7);
        let mut buf = vec![zero_rec(); 333];
        let mut recs = Vec::new();
        loop {
            let n = t.fill(&mut buf);
            if n == 0 {
                break;
            }
            recs.extend_from_slice(&buf[..n]);
        }
        assert!(recs[..500].iter().all(|r| r.taken));
        assert!(recs[500..].iter().all(|r| !r.taken));
    }
}
