//! Deterministic pseudo-random number generation for workload synthesis.
//!
//! Trace generation must be bit-reproducible across runs, platforms, and
//! dependency upgrades: every experiment in the paper reproduction is keyed
//! by a `(benchmark, input, seed)` triple, and EXPERIMENTS.md records numbers
//! produced from those triples. To guarantee stability we implement our own
//! small generators instead of relying on the (explicitly unstable) stream
//! of an external crate:
//!
//! * [`SplitMix64`] — a tiny seeding/stream-derivation generator.
//! * [`Xoshiro256`] — `xoshiro256**`, the main generator used everywhere.
//!
//! Both algorithms are public domain (Blackman & Vigna).

/// SplitMix64 generator, used to expand seeds and derive child streams.
///
/// # Examples
///
/// ```
/// use rsc_trace::rng::SplitMix64;
/// let mut sm = SplitMix64::new(42);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// assert_eq!(SplitMix64::new(42).next_u64(), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// `xoshiro256**` generator: fast, high quality, 256-bit state.
///
/// This is the workhorse generator behind all stochastic decisions in trace
/// synthesis (branch interleaving, outcome sampling, archetype
/// instantiation). Identical seeds always yield identical streams.
///
/// # Examples
///
/// ```
/// use rsc_trace::rng::Xoshiro256;
/// let mut rng = Xoshiro256::seed_from(7);
/// let p = rng.next_f64();
/// assert!((0.0..1.0).contains(&p));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator by expanding `seed` through [`SplitMix64`].
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot emit
        // four consecutive zeros, but guard anyway for clarity.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }

    /// Derives an independent child generator for a named sub-stream.
    ///
    /// Children derived with distinct `stream` values are statistically
    /// independent, which lets each static branch, each sampler, and each
    /// benchmark own a private stream while the whole workload remains a
    /// pure function of one root seed.
    pub fn fork(&self, stream: u64) -> Self {
        let mut sm = SplitMix64::new(
            self.s[0]
                .wrapping_mul(0xA24B_AED4_963E_E407)
                .wrapping_add(stream.wrapping_mul(0x9FB2_1C65_1E98_DF25)),
        );
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        Xoshiro256 { s }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            true
        } else if p <= 0.0 {
            false
        } else {
            self.next_f64() < p
        }
    }

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range requires n > 0");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as u64;
            }
            // Rejection zone: only reached for (2^64 mod n) values.
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    #[inline]
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo <= hi, "lo must not exceed hi");
        lo + (hi - lo) * self.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c implementation.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::seed_from(99);
        let mut b = Xoshiro256::seed_from(99);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_differ_from_parent_and_each_other() {
        let root = Xoshiro256::seed_from(5);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let mut again = root.fork(1);
        let a: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        let a2: Vec<u64> = (0..8).map(|_| again.next_u64()).collect();
        assert_ne!(a, b);
        assert_eq!(a, a2, "fork must be a pure function of (state, stream)");
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from(17);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Xoshiro256::seed_from(3);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.5));
            assert!(!rng.gen_bool(-0.5));
        }
    }

    #[test]
    fn gen_bool_rate_is_close() {
        let mut rng = Xoshiro256::seed_from(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate was {rate}");
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = Xoshiro256::seed_from(23);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = rng.gen_range(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "gen_range requires n > 0")]
    fn gen_range_zero_panics() {
        Xoshiro256::seed_from(1).gen_range(0);
    }

    #[test]
    fn gen_range_f64_bounds() {
        let mut rng = Xoshiro256::seed_from(29);
        for _ in 0..1000 {
            let v = rng.gen_range_f64(0.9, 0.99);
            assert!((0.9..0.99).contains(&v));
        }
        // Degenerate range is allowed.
        assert_eq!(rng.gen_range_f64(0.5, 0.5), 0.5);
    }
}
