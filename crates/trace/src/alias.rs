//! Walker's alias method for O(1) weighted sampling.
//!
//! Trace generation draws hundreds of millions of branch events from a
//! skewed static-branch weight distribution; the alias method makes each
//! draw two table lookups regardless of population size.

use crate::rng::Xoshiro256;

/// A prebuilt table for O(1) sampling from a discrete distribution.
///
/// # Examples
///
/// ```
/// use rsc_trace::alias::AliasTable;
/// use rsc_trace::rng::Xoshiro256;
///
/// let table = AliasTable::new(&[1.0, 3.0]).unwrap();
/// let mut rng = Xoshiro256::seed_from(1);
/// let hits = (0..10_000).filter(|_| table.sample(&mut rng) == 1).count();
/// assert!((hits as f64 / 10_000.0 - 0.75).abs() < 0.02);
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    cells: Vec<AliasCell>,
}

/// One slot of the table: acceptance probability plus the alias target,
/// kept together so a draw touches a single cache line.
#[derive(Debug, Clone, Copy)]
struct AliasCell {
    prob: f64,
    alias: u32,
}

/// Error returned when an [`AliasTable`] cannot be built.
#[derive(Debug, Clone, PartialEq)]
pub enum AliasError {
    /// The weight slice was empty.
    Empty,
    /// A weight was negative, NaN, or infinite.
    InvalidWeight { index: usize, weight: f64 },
    /// All weights were zero.
    ZeroTotal,
}

impl std::fmt::Display for AliasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AliasError::Empty => f.write_str("weight list is empty"),
            AliasError::InvalidWeight { index, weight } => {
                write!(f, "invalid weight {weight} at index {index}")
            }
            AliasError::ZeroTotal => f.write_str("all weights are zero"),
        }
    }
}

impl std::error::Error for AliasError {}

impl AliasTable {
    /// Builds a table from nonnegative weights (not necessarily normalized).
    ///
    /// # Errors
    ///
    /// Returns an error if `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, AliasError> {
        if weights.is_empty() {
            return Err(AliasError::Empty);
        }
        let mut total = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(AliasError::InvalidWeight {
                    index: i,
                    weight: w,
                });
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(AliasError::ZeroTotal);
        }

        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();

        // Standard two-worklist construction (Vose's variant).
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            let spill = prob[s as usize] + prob[l as usize] - 1.0;
            prob[l as usize] = spill;
            if spill < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: both lists should drain together; anything
        // remaining has probability ~1.
        for s in small.into_iter().chain(large) {
            prob[s as usize] = 1.0;
        }

        let cells = prob
            .into_iter()
            .zip(alias)
            .map(|(prob, alias)| AliasCell { prob, alias })
            .collect();
        Ok(AliasTable { cells })
    }

    /// Returns the number of outcomes.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the table has no outcomes (never true for a
    /// successfully constructed table).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Draws one index according to the weight distribution.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256) -> u32 {
        let i = rng.gen_range(self.cells.len() as u64) as usize;
        let c = self.cells[i];
        if rng.next_f64() < c.prob {
            i as u32
        } else {
            c.alias
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical(table: &AliasTable, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut counts = vec![0u64; table.len()];
        for _ in 0..n {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        counts.iter().map(|&c| c as f64 / n as f64).collect()
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let table = AliasTable::new(&[1.0; 8]).unwrap();
        for p in empirical(&table, 80_000, 1) {
            assert!((p - 0.125).abs() < 0.01, "p = {p}");
        }
    }

    #[test]
    fn skewed_weights_match_distribution() {
        let weights = [8.0, 4.0, 2.0, 1.0, 1.0];
        let total: f64 = weights.iter().sum();
        let table = AliasTable::new(&weights).unwrap();
        let emp = empirical(&table, 200_000, 2);
        for (i, &w) in weights.iter().enumerate() {
            assert!(
                (emp[i] - w / total).abs() < 0.01,
                "index {i}: expected {} got {}",
                w / total,
                emp[i]
            );
        }
    }

    #[test]
    fn zero_weight_entries_are_never_drawn() {
        let table = AliasTable::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = Xoshiro256::seed_from(3);
        for _ in 0..50_000 {
            assert_ne!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_entry_always_drawn() {
        let table = AliasTable::new(&[0.25]).unwrap();
        let mut rng = Xoshiro256::seed_from(4);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn construction_errors() {
        assert_eq!(AliasTable::new(&[]).unwrap_err(), AliasError::Empty);
        assert_eq!(
            AliasTable::new(&[0.0, 0.0]).unwrap_err(),
            AliasError::ZeroTotal
        );
        assert!(matches!(
            AliasTable::new(&[1.0, -2.0]).unwrap_err(),
            AliasError::InvalidWeight { index: 1, .. }
        ));
        assert!(matches!(
            AliasTable::new(&[f64::NAN]).unwrap_err(),
            AliasError::InvalidWeight { index: 0, .. }
        ));
    }

    #[test]
    fn unnormalized_weights_are_accepted() {
        let a = AliasTable::new(&[2.0, 6.0]).unwrap();
        let b = AliasTable::new(&[0.25, 0.75]).unwrap();
        let ea = empirical(&a, 100_000, 5);
        let eb = empirical(&b, 100_000, 5);
        assert!((ea[1] - eb[1]).abs() < 0.01);
    }
}
