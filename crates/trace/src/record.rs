//! Dynamic branch events — the unit of everything downstream.

use crate::ids::BranchId;

/// One dynamic execution of a conditional branch.
///
/// This is the entire interface between the workload substrate and the
/// speculation-control machinery: the paper's abstract model consumes only
/// the identity of the static branch, its outcome, and the position in the
/// dynamic instruction stream (used to model re-optimization latency).
///
/// # Examples
///
/// ```
/// use rsc_trace::{BranchId, BranchRecord};
/// let r = BranchRecord { branch: BranchId::new(0), taken: true, instr: 128 };
/// assert!(r.taken);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchRecord {
    /// The static branch that executed.
    pub branch: BranchId,
    /// Whether the branch was taken.
    pub taken: bool,
    /// Dynamic instruction count at which the branch retired.
    pub instr: u64,
}

impl BranchRecord {
    /// Returns the branch direction as a [`Direction`].
    pub fn direction(&self) -> Direction {
        if self.taken {
            Direction::Taken
        } else {
            Direction::NotTaken
        }
    }
}

/// A branch direction, used when talking about the *predicted* or
/// *speculated* direction rather than a concrete outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// The branch is taken.
    Taken,
    /// The branch falls through.
    NotTaken,
}

impl Direction {
    /// Returns the opposite direction.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsc_trace::Direction;
    /// assert_eq!(Direction::Taken.flip(), Direction::NotTaken);
    /// ```
    pub fn flip(self) -> Direction {
        match self {
            Direction::Taken => Direction::NotTaken,
            Direction::NotTaken => Direction::Taken,
        }
    }

    /// Converts a concrete outcome into a direction.
    pub fn from_taken(taken: bool) -> Direction {
        if taken {
            Direction::Taken
        } else {
            Direction::NotTaken
        }
    }

    /// Returns `true` if this direction matches the concrete outcome.
    pub fn matches(self, taken: bool) -> bool {
        matches!(
            (self, taken),
            (Direction::Taken, true) | (Direction::NotTaken, false)
        )
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Direction::Taken => f.write_str("taken"),
            Direction::NotTaken => f.write_str("not-taken"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_direction_matches_taken_flag() {
        let r = BranchRecord {
            branch: BranchId::new(1),
            taken: true,
            instr: 0,
        };
        assert_eq!(r.direction(), Direction::Taken);
        let r = BranchRecord {
            branch: BranchId::new(1),
            taken: false,
            instr: 0,
        };
        assert_eq!(r.direction(), Direction::NotTaken);
    }

    #[test]
    fn flip_is_involution() {
        for d in [Direction::Taken, Direction::NotTaken] {
            assert_eq!(d.flip().flip(), d);
            assert_ne!(d.flip(), d);
        }
    }

    #[test]
    fn matches_agrees_with_from_taken() {
        for taken in [true, false] {
            assert!(Direction::from_taken(taken).matches(taken));
            assert!(!Direction::from_taken(taken).flip().matches(taken));
        }
    }
}
