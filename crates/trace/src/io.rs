//! Compact binary serialization of branch traces.
//!
//! Lets a workload be generated once, stored, and replayed elsewhere
//! (e.g., to feed the controller in another process, or to archive the
//! exact trace behind a reported number). The format is a small
//! delta/varint encoding:
//!
//! ```text
//! magic "RSCT" | version u8 | event count varint |
//! per event: branch-id varint | (instr-delta << 1 | taken) varint |
//! checksum u64 LE (version >= 2)
//! ```
//!
//! Instruction counts are strictly increasing in valid traces, so deltas
//! are small and most events take 2–4 bytes.
//!
//! The checksum footer is FNV-1a over every preceding byte of the file
//! (header included), updated record by record as the stream is written,
//! so any bit flip in the body is caught even when the damaged varints
//! still decode. Version-1 streams (no footer) remain readable. Decode
//! errors carry the byte offset at which the stream went bad.

use crate::ids::BranchId;
use crate::record::BranchRecord;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"RSCT";
/// Newest format version; what [`write_trace`] emits.
const VERSION: u8 = 2;
/// Oldest version [`read_trace`] still accepts (pre-checksum streams).
const MIN_VERSION: u8 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(hash, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// Hard ceiling on the event count [`read_trace`] will accept from an
/// untrusted length header. Every event costs at least two body bytes, so
/// any genuine trace at this limit is multiple gigabytes; headers beyond
/// it are rejected *before* any allocation is sized from them. Use
/// [`read_trace_with_limit`] to tighten the bound further.
pub const MAX_TRACE_EVENTS: u64 = 1 << 32;

/// Errors produced when decoding a trace file.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the trace magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// The length header claims more events than the reader's limit; the
    /// header is rejected before any allocation is sized from it.
    TooLong {
        /// Event count claimed by the header.
        count: u64,
        /// The reader's limit ([`MAX_TRACE_EVENTS`] by default).
        limit: u64,
    },
    /// The body is structurally malformed: a varint ran past its maximum
    /// length, a field exceeded its domain, or the stream ended early.
    Corrupt {
        /// What was being decoded when the stream went bad.
        what: &'static str,
        /// Byte offset (from the start of the stream) of the failure.
        offset: u64,
    },
    /// Every field decoded, but the footer checksum does not match the
    /// bytes that were read: the stream was altered in transit.
    ChecksumMismatch {
        /// Checksum recomputed over the bytes actually read.
        computed: u64,
        /// Checksum stored in the footer.
        stored: u64,
        /// Byte offset of the footer.
        offset: u64,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error: {e}"),
            TraceIoError::BadMagic => f.write_str("not a trace file (bad magic)"),
            TraceIoError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceIoError::TooLong { count, limit } => {
                write!(f, "length header claims {count} events (limit {limit})")
            }
            TraceIoError::Corrupt { what, offset } => {
                write!(f, "corrupt trace at byte {offset}: {what}")
            }
            TraceIoError::ChecksumMismatch {
                computed,
                stored,
                offset,
            } => write!(
                f,
                "checksum mismatch at byte {offset}: computed {computed:#018x}, stored {stored:#018x}"
            ),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reader wrapper that tracks the byte offset (for error reporting) and
/// a running FNV-1a hash (for the version-2 footer check) of everything
/// read through it.
struct HashingReader<R> {
    inner: R,
    offset: u64,
    fnv: u64,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        HashingReader {
            inner,
            offset: 0,
            fnv: FNV_OFFSET,
        }
    }

    /// Like `read_exact`, but a short read becomes a typed corruption
    /// error naming `what` was being decoded and where the stream ended.
    fn fill(&mut self, buf: &mut [u8], what: &'static str) -> Result<(), TraceIoError> {
        match self.inner.read_exact(buf) {
            Ok(()) => {
                self.fnv = fnv1a(self.fnv, buf);
                self.offset += buf.len() as u64;
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(TraceIoError::Corrupt {
                what,
                offset: self.offset,
            }),
            Err(e) => Err(TraceIoError::Io(e)),
        }
    }

    fn read_varint(&mut self, what: &'static str) -> Result<u64, TraceIoError> {
        let start = self.offset;
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let mut byte = [0u8; 1];
            self.fill(&mut byte, what)?;
            if shift >= 64 {
                return Err(TraceIoError::Corrupt {
                    what: "varint too long",
                    offset: start,
                });
            }
            v |= u64::from(byte[0] & 0x7F) << shift;
            if byte[0] & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }
}

/// Writes a trace to `w`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use rsc_trace::io::{read_trace, write_trace};
/// use rsc_trace::{spec2000, InputId};
///
/// let pop = spec2000::benchmark("gzip").unwrap().population(1_000);
/// let events: Vec<_> = pop.trace(InputId::Eval, 1_000, 7).collect();
/// let mut buf = Vec::new();
/// write_trace(&mut buf, events.iter().copied()).unwrap();
/// let back = read_trace(&mut buf.as_slice()).unwrap();
/// assert_eq!(back, events);
/// ```
pub fn write_trace<W: Write, I: IntoIterator<Item = BranchRecord>>(
    w: &mut W,
    records: I,
) -> io::Result<()> {
    // Buffer the body so the count can go in the header without requiring
    // an ExactSizeIterator.
    let mut body = Vec::new();
    let mut count = 0u64;
    let mut last_instr = 0u64;
    for r in records {
        write_varint(&mut body, r.branch.index() as u64)?;
        let delta = r.instr.saturating_sub(last_instr);
        last_instr = r.instr;
        write_varint(&mut body, (delta << 1) | u64::from(r.taken))?;
        count += 1;
    }
    let mut header = Vec::with_capacity(16);
    header.extend_from_slice(MAGIC);
    header.push(VERSION);
    write_varint(&mut header, count)?;
    let checksum = fnv1a(fnv1a(FNV_OFFSET, &header), &body);
    w.write_all(&header)?;
    w.write_all(&body)?;
    w.write_all(&checksum.to_le_bytes())
}

/// Reads a whole trace from `r`, accepting at most [`MAX_TRACE_EVENTS`]
/// events.
///
/// # Errors
///
/// Returns [`TraceIoError`] on malformed input or I/O failure.
pub fn read_trace<R: Read>(r: &mut R) -> Result<Vec<BranchRecord>, TraceIoError> {
    read_trace_with_limit(r, MAX_TRACE_EVENTS)
}

/// Reads a whole trace from `r`, rejecting length headers above
/// `max_events` before sizing any allocation from them.
///
/// # Errors
///
/// Returns [`TraceIoError`] on malformed input, an over-limit header, or
/// I/O failure.
pub fn read_trace_with_limit<R: Read>(
    r: &mut R,
    max_events: u64,
) -> Result<Vec<BranchRecord>, TraceIoError> {
    let mut r = HashingReader::new(r);
    let mut magic = [0u8; 4];
    r.fill(&mut magic, "magic")?;
    if &magic != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let mut version = [0u8; 1];
    r.fill(&mut version, "version")?;
    if !(MIN_VERSION..=VERSION).contains(&version[0]) {
        return Err(TraceIoError::BadVersion(version[0]));
    }
    let count = r.read_varint("event count")?;
    if count > max_events {
        return Err(TraceIoError::TooLong {
            count,
            limit: max_events,
        });
    }
    // The header has passed the bound check but is still untrusted: cap
    // the initial reservation so a lying count inside the limit cannot
    // reserve gigabytes for a stream that ends after three bytes.
    let mut records = Vec::with_capacity(count.min(1 << 24) as usize);
    let mut instr = 0u64;
    for _ in 0..count {
        let at = r.offset;
        let branch = r.read_varint("branch id")?;
        if branch > u64::from(u32::MAX) {
            return Err(TraceIoError::Corrupt {
                what: "branch id exceeds u32",
                offset: at,
            });
        }
        let packed = r.read_varint("event payload")?;
        instr += packed >> 1;
        records.push(BranchRecord {
            branch: BranchId::new(branch as u32),
            taken: packed & 1 == 1,
            instr,
        });
    }
    if version[0] >= 2 {
        // Snapshot the running hash before the footer bytes pass through
        // the reader: the footer covers everything before itself.
        let computed = r.fnv;
        let offset = r.offset;
        let mut footer = [0u8; 8];
        r.fill(&mut footer, "checksum footer")?;
        let stored = u64::from_le_bytes(footer);
        if stored != computed {
            return Err(TraceIoError::ChecksumMismatch {
                computed,
                stored,
                offset,
            });
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(b: u32, taken: bool, instr: u64) -> BranchRecord {
        BranchRecord {
            branch: BranchId::new(b),
            taken,
            instr,
        }
    }

    #[test]
    fn roundtrip_simple() {
        let events = vec![rec(0, true, 5), rec(3, false, 11), rec(0, true, 12)];
        let mut buf = Vec::new();
        write_trace(&mut buf, events.iter().copied()).unwrap();
        assert_eq!(read_trace(&mut buf.as_slice()).unwrap(), events);
    }

    #[test]
    fn roundtrip_empty() {
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).unwrap();
        assert!(read_trace(&mut buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn encoding_is_compact() {
        // 10k events with small deltas should take only a few bytes each.
        let events: Vec<_> = (0..10_000u64)
            .map(|i| rec((i % 64) as u32, i % 3 == 0, (i + 1) * 6))
            .collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, events.iter().copied()).unwrap();
        assert!(buf.len() < 10_000 * 4, "encoded size {} bytes", buf.len());
        assert_eq!(read_trace(&mut buf.as_slice()).unwrap(), events);
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOPE\x01\x00".to_vec();
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(TraceIoError::BadMagic)
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"RSCT");
        buf.push(99);
        buf.push(0);
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(TraceIoError::BadVersion(99))
        ));
    }

    #[test]
    fn rejects_truncated_body() {
        let events = [rec(0, true, 5), rec(1, false, 9)];
        let mut buf = Vec::new();
        write_trace(&mut buf, events.iter().copied()).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_absurd_length_header_before_allocating() {
        // A syntactically valid header claiming 2^60 events. Decoding must
        // fail fast on the bound check, not attempt a 2^60-slot read loop
        // (or any allocation sized from the header).
        let mut buf = Vec::new();
        buf.extend_from_slice(b"RSCT");
        buf.push(VERSION);
        write_varint(&mut buf, 1u64 << 60).unwrap();
        match read_trace(&mut buf.as_slice()) {
            Err(TraceIoError::TooLong { count, limit }) => {
                assert_eq!(count, 1 << 60);
                assert_eq!(limit, MAX_TRACE_EVENTS);
            }
            other => panic!("expected TooLong, got {other:?}"),
        }
    }

    #[test]
    fn custom_limit_is_enforced() {
        let events = vec![rec(0, true, 5), rec(1, false, 9), rec(2, true, 14)];
        let mut buf = Vec::new();
        write_trace(&mut buf, events.iter().copied()).unwrap();
        assert!(matches!(
            read_trace_with_limit(&mut buf.as_slice(), 2),
            Err(TraceIoError::TooLong { count: 3, limit: 2 })
        ));
        assert_eq!(
            read_trace_with_limit(&mut buf.as_slice(), 3).unwrap(),
            events
        );
    }

    #[test]
    fn roundtrip_large_values() {
        let events = vec![rec(u32::MAX, true, 1), rec(0, false, u64::MAX / 4)];
        let mut buf = Vec::new();
        write_trace(&mut buf, events.iter().copied()).unwrap();
        assert_eq!(read_trace(&mut buf.as_slice()).unwrap(), events);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(TraceIoError::BadMagic.to_string().contains("magic"));
        assert!(TraceIoError::BadVersion(3).to_string().contains('3'));
        let corrupt = TraceIoError::Corrupt {
            what: "branch id",
            offset: 17,
        };
        assert!(corrupt.to_string().contains("branch id"));
        assert!(corrupt.to_string().contains("17"));
        let mismatch = TraceIoError::ChecksumMismatch {
            computed: 1,
            stored: 2,
            offset: 33,
        };
        assert!(mismatch.to_string().contains("33"));
    }

    /// Encodes `events` in the version-1 layout (no checksum footer).
    fn write_v1(events: &[BranchRecord]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"RSCT");
        buf.push(1);
        write_varint(&mut buf, events.len() as u64).unwrap();
        let mut last = 0u64;
        for r in events {
            write_varint(&mut buf, u64::from(r.branch.index() as u32)).unwrap();
            let delta = r.instr - last;
            last = r.instr;
            write_varint(&mut buf, (delta << 1) | u64::from(r.taken)).unwrap();
        }
        buf
    }

    #[test]
    fn reads_version_1_streams_without_footer() {
        let events = vec![rec(0, true, 5), rec(3, false, 11), rec(0, true, 12)];
        let buf = write_v1(&events);
        assert_eq!(read_trace(&mut buf.as_slice()).unwrap(), events);
    }

    #[test]
    fn detects_body_bit_flip_via_checksum() {
        // Flip the taken bit of the second event. The varints still
        // decode — only the checksum can tell this stream was altered.
        let events = [rec(0, true, 5), rec(1, true, 9), rec(2, true, 14)];
        let mut buf = Vec::new();
        write_trace(&mut buf, events.iter().copied()).unwrap();
        let footer_at = (buf.len() - 8) as u64;
        let mid = buf.len() - 10;
        buf[mid] ^= 1;
        match read_trace(&mut buf.as_slice()) {
            Err(TraceIoError::ChecksumMismatch {
                computed,
                stored,
                offset,
            }) => {
                assert_ne!(computed, stored);
                assert_eq!(offset, footer_at);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_footer_is_typed_with_offset() {
        let mut buf = Vec::new();
        write_trace(&mut buf, [rec(0, true, 5)]).unwrap();
        let body_end = (buf.len() - 8) as u64;
        buf.truncate(buf.len() - 5);
        match read_trace(&mut buf.as_slice()) {
            Err(TraceIoError::Corrupt { what, offset }) => {
                assert_eq!(what, "checksum footer");
                assert_eq!(offset, body_end);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncated_body_reports_byte_offset() {
        let events = [rec(0, true, 5), rec(1, false, 9)];
        let buf = write_v1(&events);
        let cut = buf.len() - 1;
        let mut short = buf;
        short.truncate(cut);
        match read_trace(&mut short.as_slice()) {
            Err(TraceIoError::Corrupt { offset, .. }) => assert_eq!(offset, cut as u64),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
