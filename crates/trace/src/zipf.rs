//! Zipf-like weight generation for static-branch execution frequencies.
//!
//! Real programs execute a few static branches very often and most branches
//! rarely; a Zipf distribution over rank is the standard first-order model.

/// Returns `n` weights following `w(rank) = 1 / (rank + 1)^exponent`,
/// normalized to sum to `total`.
///
/// Rank 0 is the hottest. `exponent` around 1.0 gives classic Zipf;
/// smaller exponents flatten the distribution.
///
/// # Panics
///
/// Panics if `n == 0`, `total <= 0`, or `exponent` is not finite.
///
/// # Examples
///
/// ```
/// use rsc_trace::zipf::zipf_weights;
/// let w = zipf_weights(4, 1.0, 1.0);
/// assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// assert!(w[0] > w[3]);
/// ```
pub fn zipf_weights(n: usize, exponent: f64, total: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one weight");
    assert!(total > 0.0, "total must be positive");
    assert!(exponent.is_finite(), "exponent must be finite");
    let raw: Vec<f64> = (0..n)
        .map(|rank| 1.0 / ((rank + 1) as f64).powf(exponent))
        .collect();
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w * total / sum).collect()
}

/// Returns `n` equal weights summing to `total`.
///
/// # Panics
///
/// Panics if `n == 0` or `total < 0`.
pub fn flat_weights(n: usize, total: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one weight");
    assert!(total >= 0.0, "total must be nonnegative");
    vec![total / n as f64; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_monotone_decreasing() {
        let w = zipf_weights(100, 1.0, 1.0);
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
    }

    #[test]
    fn zipf_normalizes_to_total() {
        for total in [1.0, 0.25, 42.0] {
            let w = zipf_weights(17, 0.8, total);
            assert!((w.iter().sum::<f64>() - total).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_exponent_is_flat() {
        let w = zipf_weights(10, 0.0, 1.0);
        for &x in &w {
            assert!((x - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn flat_weights_are_equal() {
        let w = flat_weights(5, 2.0);
        assert_eq!(w, vec![0.4; 5]);
    }

    #[test]
    fn higher_exponent_concentrates_head() {
        let shallow = zipf_weights(50, 0.5, 1.0);
        let steep = zipf_weights(50, 1.5, 1.0);
        assert!(steep[0] > shallow[0]);
        assert!(steep[49] < shallow[49]);
    }

    #[test]
    #[should_panic(expected = "need at least one weight")]
    fn zipf_empty_panics() {
        zipf_weights(0, 1.0, 1.0);
    }
}
