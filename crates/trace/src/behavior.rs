//! Outcome-generating behaviors for static branches.
//!
//! Each static branch owns a [`Behavior`] that maps its *execution index*
//! (how many times this branch has executed so far) to a probability of
//! being taken. The archetypes cover every phenomenon the paper studies:
//!
//! * stationary bias of any strength ([`Behavior::Fixed`]),
//! * branches that change behavior partway through the run, including the
//!   paper's Figure 3 examples ([`Behavior::MultiPhase`]),
//! * bias that gradually softens ([`Behavior::Drift`]),
//! * the induction-variable branch that is false for its first 32,768
//!   executions and true afterwards ([`Behavior::Induction`]),
//! * periodic bursts of misspeculation ([`Behavior::PeriodicBurst`]),
//! * branches whose behavior flips together with a correlated group, as in
//!   the paper's Figure 9 ([`Behavior::Grouped`]).

/// One stationary segment of a [`Behavior::MultiPhase`] branch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Number of executions this phase lasts. The final phase of a
    /// `MultiPhase` behavior extends to the end of the run regardless.
    pub len: u64,
    /// Probability of the branch being taken during this phase.
    pub p_taken: f64,
}

/// A generative model of one static branch's outcome stream.
///
/// # Examples
///
/// ```
/// use rsc_trace::behavior::Behavior;
/// // The paper's induction-variable example: false for the first 32,768
/// // executions, then true forever.
/// let b = Behavior::Induction { flip_at: 32_768 };
/// assert_eq!(b.p_taken(0, false), 0.0);
/// assert_eq!(b.p_taken(32_768, false), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Behavior {
    /// Stationary Bernoulli outcomes with probability `p_taken`.
    Fixed {
        /// Probability of being taken at every execution.
        p_taken: f64,
    },
    /// Piecewise-stationary behavior: each phase has its own probability.
    ///
    /// Models branches that start biased and later flip, soften, or regain
    /// bias (the paper's Figures 3 and 6 populations).
    MultiPhase {
        /// The phases, in order. Must be non-empty; the last phase extends
        /// to the end of the run.
        phases: Vec<Phase>,
    },
    /// Probability interpolates linearly from `start` to `end` over the
    /// first `over` executions, then stays at `end`.
    Drift {
        /// Initial taken probability.
        start: f64,
        /// Final taken probability.
        end: f64,
        /// Number of executions over which the drift happens.
        over: u64,
    },
    /// Deterministically not-taken until `flip_at` executions, then taken.
    Induction {
        /// The execution index at which the outcome flips.
        flip_at: u64,
    },
    /// Mostly `base`, with windows of `burst` probability: each `period`
    /// executions, the first `burst_len` positions (offset by `phase`) use
    /// `burst`.
    PeriodicBurst {
        /// Probability outside bursts.
        base: f64,
        /// Probability inside bursts.
        burst: f64,
        /// Cycle length in executions.
        period: u64,
        /// Burst length in executions (clamped to `period`).
        burst_len: u64,
        /// Phase offset in executions: the first burst starts at execution
        /// `period - phase` (mod `period`). Zero puts a burst at the very
        /// first execution.
        phase: u64,
    },
    /// Probability depends on the *group phase* the generator passes in:
    /// `in_phase` while the group is active, `out_phase` otherwise.
    ///
    /// Used for the paper's Figure 9 correlated vortex branches.
    Grouped {
        /// Taken probability while the group is in its active phase.
        in_phase: f64,
        /// Taken probability otherwise.
        out_phase: f64,
    },
}

impl Behavior {
    /// Returns the taken probability for the `exec`-th execution of this
    /// branch. `group_active` only matters for [`Behavior::Grouped`].
    #[inline]
    pub fn p_taken(&self, exec: u64, group_active: bool) -> f64 {
        match self {
            Behavior::Fixed { p_taken } => *p_taken,
            Behavior::MultiPhase { phases } => {
                debug_assert!(!phases.is_empty());
                let mut start = 0u64;
                for phase in phases {
                    let end = start.saturating_add(phase.len);
                    if exec < end {
                        return phase.p_taken;
                    }
                    start = end;
                }
                phases.last().map(|p| p.p_taken).unwrap_or(0.5)
            }
            Behavior::Drift { start, end, over } => {
                if *over == 0 || exec >= *over {
                    *end
                } else {
                    let t = exec as f64 / *over as f64;
                    start + (end - start) * t
                }
            }
            Behavior::Induction { flip_at } => {
                if exec < *flip_at {
                    0.0
                } else {
                    1.0
                }
            }
            Behavior::PeriodicBurst {
                base,
                burst,
                period,
                burst_len,
                phase,
            } => {
                if *period == 0 {
                    return *base;
                }
                let pos = (exec + phase) % *period;
                if pos < (*burst_len).min(*period) {
                    *burst
                } else {
                    *base
                }
            }
            Behavior::Grouped {
                in_phase,
                out_phase,
            } => {
                if group_active {
                    *in_phase
                } else {
                    *out_phase
                }
            }
        }
    }

    /// Returns a deterministic upper bound on phase structure changes, used
    /// by tests and analysis to reason about a behavior's complexity.
    pub fn phase_count(&self) -> usize {
        match self {
            Behavior::Fixed { .. } | Behavior::Grouped { .. } => 1,
            Behavior::MultiPhase { phases } => phases.len(),
            Behavior::Drift { .. } | Behavior::Induction { .. } => 2,
            Behavior::PeriodicBurst { .. } => 2,
        }
    }

    /// Convenience constructor for a two-phase flip behavior: probability
    /// `before` for the first `flip_at` executions, `after` afterwards.
    pub fn flip(before: f64, after: f64, flip_at: u64) -> Behavior {
        Behavior::MultiPhase {
            phases: vec![
                Phase {
                    len: flip_at,
                    p_taken: before,
                },
                Phase {
                    len: u64::MAX,
                    p_taken: after,
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_stationary() {
        let b = Behavior::Fixed { p_taken: 0.42 };
        assert_eq!(b.p_taken(0, false), 0.42);
        assert_eq!(b.p_taken(1 << 40, true), 0.42);
    }

    #[test]
    fn multiphase_boundaries_are_half_open() {
        let b = Behavior::MultiPhase {
            phases: vec![
                Phase {
                    len: 10,
                    p_taken: 1.0,
                },
                Phase {
                    len: 10,
                    p_taken: 0.0,
                },
                Phase {
                    len: u64::MAX,
                    p_taken: 0.5,
                },
            ],
        };
        assert_eq!(b.p_taken(0, false), 1.0);
        assert_eq!(b.p_taken(9, false), 1.0);
        assert_eq!(b.p_taken(10, false), 0.0);
        assert_eq!(b.p_taken(19, false), 0.0);
        assert_eq!(b.p_taken(20, false), 0.5);
        assert_eq!(b.p_taken(u64::MAX - 1, false), 0.5);
    }

    #[test]
    fn multiphase_saturating_lengths_do_not_overflow() {
        let b = Behavior::MultiPhase {
            phases: vec![
                Phase {
                    len: u64::MAX,
                    p_taken: 0.9,
                },
                Phase {
                    len: u64::MAX,
                    p_taken: 0.1,
                },
            ],
        };
        assert_eq!(b.p_taken(u64::MAX - 1, false), 0.9);
    }

    #[test]
    fn flip_constructor_matches_manual_multiphase() {
        let b = Behavior::flip(0.99, 0.01, 1000);
        assert_eq!(b.p_taken(999, false), 0.99);
        assert_eq!(b.p_taken(1000, false), 0.01);
    }

    #[test]
    fn drift_interpolates_linearly() {
        let b = Behavior::Drift {
            start: 1.0,
            end: 0.0,
            over: 100,
        };
        assert_eq!(b.p_taken(0, false), 1.0);
        assert!((b.p_taken(50, false) - 0.5).abs() < 1e-12);
        assert_eq!(b.p_taken(100, false), 0.0);
        assert_eq!(b.p_taken(1_000_000, false), 0.0);
    }

    #[test]
    fn drift_zero_length_is_end_value() {
        let b = Behavior::Drift {
            start: 0.9,
            end: 0.2,
            over: 0,
        };
        assert_eq!(b.p_taken(0, false), 0.2);
    }

    #[test]
    fn induction_flips_exactly_once() {
        let b = Behavior::Induction { flip_at: 5 };
        for e in 0..5 {
            assert_eq!(b.p_taken(e, false), 0.0);
        }
        for e in 5..10 {
            assert_eq!(b.p_taken(e, false), 1.0);
        }
    }

    #[test]
    fn periodic_burst_cycles() {
        let b = Behavior::PeriodicBurst {
            base: 0.99,
            burst: 0.1,
            period: 10,
            burst_len: 2,
            phase: 0,
        };
        assert_eq!(b.p_taken(0, false), 0.1);
        assert_eq!(b.p_taken(1, false), 0.1);
        assert_eq!(b.p_taken(2, false), 0.99);
        assert_eq!(b.p_taken(10, false), 0.1);
        assert_eq!(b.p_taken(12, false), 0.99);
    }

    #[test]
    fn periodic_burst_degenerate_period() {
        let b = Behavior::PeriodicBurst {
            base: 0.7,
            burst: 0.1,
            period: 0,
            burst_len: 5,
            phase: 0,
        };
        assert_eq!(b.p_taken(3, false), 0.7);
    }

    #[test]
    fn grouped_follows_group_phase() {
        let b = Behavior::Grouped {
            in_phase: 0.99,
            out_phase: 0.3,
        };
        assert_eq!(b.p_taken(0, true), 0.99);
        assert_eq!(b.p_taken(0, false), 0.3);
    }

    #[test]
    fn phase_counts() {
        assert_eq!(Behavior::Fixed { p_taken: 0.5 }.phase_count(), 1);
        assert_eq!(Behavior::flip(1.0, 0.0, 10).phase_count(), 2);
        assert_eq!(Behavior::Induction { flip_at: 1 }.phase_count(), 2);
    }
}
