//! Benchmark models and their instantiation into populations.

use crate::branch::StaticBranchSpec;
use crate::group::GroupSchedule;
use crate::ids::InputId;
use crate::population::{instantiate_group, PopulationGroup};
use crate::rng::Xoshiro256;
use crate::workload::Trace;

/// Reference numbers reported by the paper for one benchmark, used when
/// printing paper-vs-measured comparisons (Tables 1 and 3).
#[derive(Debug, Clone, PartialEq)]
pub struct PaperReference {
    /// Table 1 "Profile Input".
    pub profile_input: &'static str,
    /// Table 1 "Evaluation Input".
    pub eval_input: &'static str,
    /// Table 1 run length in billions of instructions.
    pub run_len_billions: u32,
    /// Table 3: static conditional branches touched.
    pub touched: u32,
    /// Table 3: branches that ever enter the biased state.
    pub biased: u32,
    /// Table 3: static branches evicted at least once.
    pub evicted: u32,
    /// Table 3: total evictions.
    pub total_evicts: u32,
    /// Table 3: percent of dynamic branches speculated correctly.
    pub pct_spec: f64,
    /// Table 3: average instructions between misspeculations.
    pub misspec_dist: u64,
}

/// A complete generative model of one benchmark's conditional-branch
/// behavior, described as population groups plus correlated phase groups.
#[derive(Debug, Clone)]
pub struct BenchmarkModel {
    /// Benchmark name (e.g. `"gcc"`).
    pub name: &'static str,
    /// Model identity seed; all branch instantiation randomness derives
    /// from this, so a model is a pure value.
    pub seed: u64,
    /// Mean dynamic instructions per conditional branch.
    pub instr_per_branch: u32,
    /// The population groups.
    pub groups: Vec<PopulationGroup>,
    /// Correlated phase-group schedules (Figure 9 behavior).
    pub phase_groups: Vec<GroupSchedule>,
    /// Paper-reported reference values for comparisons.
    pub paper: PaperReference,
}

impl BenchmarkModel {
    /// Total number of static branches across all groups.
    pub fn static_branches(&self) -> u32 {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// Instantiates the model into a concrete [`Population`].
    ///
    /// `events_hint` should be the number of dynamic branch events the
    /// evaluation run will contain; behavior phase thresholds scale with it.
    /// Instantiation is deterministic: the same model yields the same
    /// population for the same hint.
    pub fn population(&self, events_hint: u64) -> Population {
        let mut rng = Xoshiro256::seed_from(self.seed).fork(POP_STREAM);
        let total_share: f64 = self.groups.iter().map(|g| g.weight_share).sum();
        assert!(total_share > 0.0, "model has no dynamic weight");
        let mut branches = Vec::with_capacity(self.static_branches() as usize);
        for group in &self.groups {
            instantiate_group(
                group,
                &mut rng,
                total_share,
                events_hint,
                self.phase_groups.len(),
                &mut branches,
            );
        }
        Population {
            name: self.name,
            instr_per_branch: self.instr_per_branch,
            branches,
            phase_groups: self.phase_groups.clone(),
        }
    }
}

/// RNG sub-stream used for population instantiation ("populate" in ASCII).
const POP_STREAM: u64 = 0x706F_7075_6C61_7465;

/// A concrete set of static branches plus shared phase schedules — the
/// instantiated form of a [`BenchmarkModel`], ready to generate traces.
#[derive(Debug, Clone)]
pub struct Population {
    name: &'static str,
    instr_per_branch: u32,
    branches: Vec<StaticBranchSpec>,
    phase_groups: Vec<GroupSchedule>,
}

impl Population {
    /// Creates a population directly from branch specs (mainly for tests
    /// and custom workloads).
    pub fn from_branches(
        name: &'static str,
        instr_per_branch: u32,
        branches: Vec<StaticBranchSpec>,
        phase_groups: Vec<GroupSchedule>,
    ) -> Self {
        assert!(!branches.is_empty(), "population needs at least one branch");
        assert!(instr_per_branch >= 1, "instr_per_branch must be at least 1");
        Population {
            name,
            instr_per_branch,
            branches,
            phase_groups,
        }
    }

    /// Benchmark name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of static branches.
    pub fn static_branches(&self) -> usize {
        self.branches.len()
    }

    /// Mean dynamic instructions per branch event.
    pub fn instr_per_branch(&self) -> u32 {
        self.instr_per_branch
    }

    /// The branch specifications.
    pub fn branches(&self) -> &[StaticBranchSpec] {
        &self.branches
    }

    /// The phase-group schedules.
    pub fn phase_groups(&self) -> &[GroupSchedule] {
        &self.phase_groups
    }

    /// Returns the number of branches with nonzero weight on `input`.
    pub fn touched_on(&self, input: InputId) -> usize {
        self.branches
            .iter()
            .filter(|b| b.weight(input) > 0.0)
            .count()
    }

    /// Creates a deterministic trace of `events` branch events on `input`.
    ///
    /// # Panics
    ///
    /// Panics if the population carries no weight on `input`.
    pub fn trace(&self, input: InputId, events: u64, seed: u64) -> Trace<'_> {
        Trace::new(self, input, events, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Behavior;
    use crate::population::Archetype;

    fn tiny_model() -> BenchmarkModel {
        BenchmarkModel {
            name: "tiny",
            seed: 7,
            instr_per_branch: 6,
            groups: vec![
                PopulationGroup::new(
                    "hot",
                    4,
                    0.8,
                    1.0,
                    Archetype::StableBiased { bias: (0.996, 1.0) },
                ),
                PopulationGroup::new(
                    "cold",
                    8,
                    0.2,
                    0.0,
                    Archetype::Unbiased { bias: (0.5, 0.8) },
                ),
            ],
            phase_groups: vec![],
            paper: PaperReference {
                profile_input: "a",
                eval_input: "b",
                run_len_billions: 1,
                touched: 12,
                biased: 4,
                evicted: 0,
                total_evicts: 0,
                pct_spec: 50.0,
                misspec_dist: 10_000,
            },
        }
    }

    #[test]
    fn population_has_all_branches() {
        let pop = tiny_model().population(100_000);
        assert_eq!(pop.static_branches(), 12);
        assert_eq!(pop.name(), "tiny");
    }

    #[test]
    fn instantiation_is_deterministic() {
        let m = tiny_model();
        let a = m.population(100_000);
        let b = m.population(100_000);
        assert_eq!(a.branches(), b.branches());
    }

    #[test]
    fn weights_are_normalized_across_groups() {
        let pop = tiny_model().population(100_000);
        let total: f64 = pop.branches().iter().map(|b| b.eval_weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "total weight {total}");
    }

    #[test]
    fn from_branches_roundtrip() {
        let pop = Population::from_branches(
            "custom",
            5,
            vec![StaticBranchSpec::new(Behavior::Fixed { p_taken: 1.0 }, 1.0)],
            vec![],
        );
        assert_eq!(pop.static_branches(), 1);
        assert_eq!(pop.instr_per_branch(), 5);
        assert_eq!(pop.touched_on(InputId::Eval), 1);
    }

    #[test]
    #[should_panic(expected = "at least one branch")]
    fn empty_population_panics() {
        Population::from_branches("empty", 5, vec![], vec![]);
    }
}
