//! Aggregate statistics over a trace, used for validation and reporting.

use crate::record::BranchRecord;

/// Per-branch and aggregate counts accumulated from a stream of
/// [`BranchRecord`]s.
///
/// # Examples
///
/// ```
/// use rsc_trace::{spec2000, InputId, TraceStats};
/// let model = spec2000::benchmark("mcf").unwrap();
/// let pop = model.population(50_000);
/// let stats = TraceStats::from_trace(pop.trace(InputId::Eval, 50_000, 1));
/// assert_eq!(stats.total_events(), 50_000);
/// assert!(stats.touched() > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    taken: Vec<u64>,
    not_taken: Vec<u64>,
    total: u64,
    last_instr: u64,
}

impl TraceStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        TraceStats::default()
    }

    /// Accumulates a whole trace.
    pub fn from_trace<I: IntoIterator<Item = BranchRecord>>(trace: I) -> Self {
        let mut stats = TraceStats::new();
        for r in trace {
            stats.record(&r);
        }
        stats
    }

    /// Records one event.
    pub fn record(&mut self, r: &BranchRecord) {
        let idx = r.branch.index();
        if idx >= self.taken.len() {
            self.taken.resize(idx + 1, 0);
            self.not_taken.resize(idx + 1, 0);
        }
        if r.taken {
            self.taken[idx] += 1;
        } else {
            self.not_taken[idx] += 1;
        }
        self.total += 1;
        self.last_instr = self.last_instr.max(r.instr);
    }

    /// Total events recorded.
    pub fn total_events(&self) -> u64 {
        self.total
    }

    /// Highest instruction count observed.
    pub fn instructions(&self) -> u64 {
        self.last_instr
    }

    /// Number of distinct static branches that executed at least once.
    pub fn touched(&self) -> usize {
        (0..self.taken.len())
            .filter(|&i| self.taken[i] + self.not_taken[i] > 0)
            .count()
    }

    /// Executions of branch `idx`.
    pub fn executions(&self, idx: usize) -> u64 {
        if idx < self.taken.len() {
            self.taken[idx] + self.not_taken[idx]
        } else {
            0
        }
    }

    /// Bias of branch `idx`: the fraction of executions in the majority
    /// direction, or `None` if the branch never executed.
    pub fn bias(&self, idx: usize) -> Option<f64> {
        let n = self.executions(idx);
        if n == 0 {
            return None;
        }
        let t = self.taken[idx];
        Some(t.max(n - t) as f64 / n as f64)
    }

    /// Number of branches whose bias is at least `threshold`.
    pub fn branches_with_bias_at_least(&self, threshold: f64) -> usize {
        (0..self.taken.len())
            .filter(|&i| self.bias(i).is_some_and(|b| b >= threshold))
            .count()
    }

    /// Fraction of *dynamic* events belonging to branches whose whole-run
    /// bias is at least `threshold` (the quantity behind the paper's
    /// Figure 2 opportunity claim).
    pub fn dynamic_coverage_at_bias(&self, threshold: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let covered: u64 = (0..self.taken.len())
            .filter(|&i| self.bias(i).is_some_and(|b| b >= threshold))
            .map(|i| self.executions(i))
            .sum();
        covered as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::BranchId;

    fn rec(branch: u32, taken: bool, instr: u64) -> BranchRecord {
        BranchRecord {
            branch: BranchId::new(branch),
            taken,
            instr,
        }
    }

    #[test]
    fn empty_stats() {
        let s = TraceStats::new();
        assert_eq!(s.total_events(), 0);
        assert_eq!(s.touched(), 0);
        assert_eq!(s.bias(0), None);
        assert_eq!(s.dynamic_coverage_at_bias(0.99), 0.0);
    }

    #[test]
    fn counts_and_bias() {
        let s = TraceStats::from_trace(vec![
            rec(0, true, 5),
            rec(0, true, 10),
            rec(0, false, 15),
            rec(1, false, 20),
        ]);
        assert_eq!(s.total_events(), 4);
        assert_eq!(s.touched(), 2);
        assert_eq!(s.executions(0), 3);
        assert!((s.bias(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.bias(1), Some(1.0));
        assert_eq!(s.instructions(), 20);
    }

    #[test]
    fn bias_uses_majority_direction() {
        // 1 taken, 3 not-taken: bias is 0.75 even though p(taken) = 0.25.
        let s = TraceStats::from_trace(vec![
            rec(0, true, 1),
            rec(0, false, 2),
            rec(0, false, 3),
            rec(0, false, 4),
        ]);
        assert_eq!(s.bias(0), Some(0.75));
    }

    #[test]
    fn coverage_weights_by_execution() {
        let mut evs = Vec::new();
        // Branch 0: 90 biased executions; branch 1: 10 unbiased ones.
        for i in 0..90 {
            evs.push(rec(0, true, i));
        }
        for i in 0..10 {
            evs.push(rec(1, i % 2 == 0, 100 + i));
        }
        let s = TraceStats::from_trace(evs);
        assert!((s.dynamic_coverage_at_bias(0.99) - 0.9).abs() < 1e-12);
        assert_eq!(s.branches_with_bias_at_least(0.99), 1);
    }
}
