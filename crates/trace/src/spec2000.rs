//! Synthetic models of the twelve SPEC2000 integer benchmarks the paper
//! evaluates.
//!
//! The paper runs `bzip2 … vpr` to completion (9–45 billion instructions)
//! under functional simulation; we cannot use the proprietary binaries or
//! inputs, so each benchmark is modeled as a branch *population*: counts of
//! static branches per behavior archetype plus the share of dynamic
//! execution each archetype carries. Counts of touched branches come
//! directly from the paper's Table 3; archetype mixtures are calibrated so
//! the reproduction harness lands near the paper's reported shapes
//! (Figure 2 opportunity curves, Table 3 transition counts, Figure 9 group
//! structure).
//!
//! Every model also records the paper's reported numbers
//! ([`PaperReference`]) so experiment output can print paper-vs-measured
//! side by side.

use crate::group::GroupSchedule;
use crate::model::{BenchmarkModel, PaperReference};
use crate::population::{AfterFlip, Archetype, PopulationGroup};

/// Post-flip mixture matching the paper's Figure 6: when a branch leaves
/// its biased behavior, ~20% become perfectly biased the other way, about
/// half end up strongly degraded, and the rest soften mildly.
fn flip_mixture() -> Vec<AfterFlip> {
    vec![
        AfterFlip::Reverse,
        AfterFlip::Reverse,
        AfterFlip::Soften((0.02, 0.20)),
        AfterFlip::Soften((0.05, 0.30)),
        AfterFlip::Soften((0.30, 0.70)),
        AfterFlip::Soften((0.70, 0.90)),
    ]
}

/// Compact per-benchmark mixture description; expanded by [`build`].
struct Mix {
    name: &'static str,
    seed: u64,
    instr_per_branch: u32,
    /// (count, dynamic share, bias_lo, bias_hi) for stable biased branches.
    hot: (u32, f64, f64, f64),
    /// (count, share): stationary 0.90–0.99 bias.
    moderate: (u32, f64),
    /// (count, share): stationary 0.50–0.88 bias.
    unbiased: (u32, f64),
    /// (count, share): rarely executed tail.
    cold: (u32, f64),
    /// (count, share): biased then changing (Figure 3 / Figure 6).
    flip: (u32, f64),
    /// (count, share): biased → dip → biased again.
    rebias: (u32, f64),
    /// (count, share): unbiased at first, biased later (needs revisit arc).
    late: (u32, f64),
    /// (count, share): deterministic induction-variable flip.
    induction: (u32, f64),
    /// (count, share): pathological oscillators (need the oscillation cap).
    osc: (u32, f64),
    /// (count, share): correlated group-flip branches (Figure 9).
    group_flip: (u32, f64),
    /// Phase-group toggle schedules, one per correlated group.
    groups: Vec<Vec<f64>>,
    /// Fraction of hot branches whose direction inverts on the profile
    /// input (cross-input misspeculation sources).
    input_dep: f64,
    /// Fraction of hot branches absent from the profile input
    /// (cross-input benefit loss).
    eval_only: f64,
    paper: PaperReference,
}

fn build(mix: Mix) -> BenchmarkModel {
    let mut groups = Vec::new();
    let (n, share, lo, hi) = mix.hot;
    if n > 0 {
        groups.push(
            PopulationGroup::new(
                "hot-biased",
                n,
                share,
                0.6,
                Archetype::StableBiased { bias: (lo, hi) },
            )
            .with_input_dep(mix.input_dep)
            .with_eval_only(mix.eval_only),
        );
    }
    let (n, share) = mix.moderate;
    if n > 0 {
        groups.push(
            PopulationGroup::new(
                "moderate",
                n,
                share,
                0.6,
                Archetype::Moderate {
                    bias: (0.90, 0.985),
                },
            )
            .with_profile_only(0.05),
        );
    }
    let (n, share) = mix.unbiased;
    if n > 0 {
        groups.push(
            PopulationGroup::new(
                "unbiased",
                n,
                share,
                0.5,
                Archetype::Unbiased { bias: (0.50, 0.88) },
            )
            .with_profile_only(0.05),
        );
    }
    let (n, share) = mix.cold;
    if n > 0 {
        groups.push(PopulationGroup::new(
            "cold",
            n,
            share,
            0.3,
            Archetype::Unbiased { bias: (0.50, 0.95) },
        ));
    }
    let (n, share) = mix.flip;
    if n > 0 {
        groups.push(PopulationGroup::new(
            "flip",
            n,
            share,
            0.4,
            Archetype::LateFlip {
                initial: (0.998, 1.0),
                flip_frac: (0.25, 0.80),
                after: flip_mixture(),
            },
        ));
    }
    let (n, share) = mix.rebias;
    if n > 0 {
        groups.push(PopulationGroup::new(
            "rebias",
            n,
            share,
            0.2,
            Archetype::Rebias {
                bias: (0.997, 1.0),
                dip: (0.35, 0.65),
                first_end: (0.20, 0.40),
                dip_len: (0.15, 0.30),
            },
        ));
    }
    let (n, share) = mix.late;
    if n > 0 {
        groups.push(PopulationGroup::new(
            "late-bias",
            n,
            share,
            0.2,
            Archetype::LateBias {
                before: (0.55, 0.85),
                start_frac: (0.10, 0.30),
                bias: (0.997, 1.0),
            },
        ));
    }
    let (n, share) = mix.induction;
    if n > 0 {
        groups.push(PopulationGroup::new(
            "induction",
            n,
            share,
            0.0,
            Archetype::Induction,
        ));
    }
    let (n, share) = mix.osc;
    if n > 0 {
        groups.push(PopulationGroup::new(
            "oscillator",
            n,
            share,
            0.2,
            Archetype::Oscillator {
                period_frac: (0.02, 0.10),
                high: (0.997, 1.0),
                low: (0.02, 0.15),
            },
        ));
    }
    let (n, share) = mix.group_flip;
    if n > 0 {
        groups.push(
            PopulationGroup::new(
                "group-flip",
                n,
                share,
                0.3,
                Archetype::GroupFlip {
                    biased: (0.997, 1.0),
                    degraded: (0.25, 0.70),
                },
            )
            .with_phase_groups(),
        );
    }

    let phase_groups = mix
        .groups
        .into_iter()
        .map(|b| GroupSchedule::new(b).expect("model phase schedules are valid"))
        .collect();

    BenchmarkModel {
        name: mix.name,
        seed: mix.seed,
        instr_per_branch: mix.instr_per_branch,
        groups,
        phase_groups,
        paper: mix.paper,
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the paper's table columns
fn paper(
    profile_input: &'static str,
    eval_input: &'static str,
    run_len_billions: u32,
    touched: u32,
    biased: u32,
    evicted: u32,
    total_evicts: u32,
    pct_spec: f64,
    misspec_dist: u64,
) -> PaperReference {
    PaperReference {
        profile_input,
        eval_input,
        run_len_billions,
        touched,
        biased,
        evicted,
        total_evicts,
        pct_spec,
        misspec_dist,
    }
}

/// Returns the model for `name`, or `None` if unknown.
///
/// # Examples
///
/// ```
/// use rsc_trace::spec2000;
/// assert!(spec2000::benchmark("gcc").is_some());
/// assert!(spec2000::benchmark("nope").is_none());
/// ```
pub fn benchmark(name: &str) -> Option<BenchmarkModel> {
    all().into_iter().find(|m| m.name == name)
}

/// Names of all twelve benchmarks, in the paper's order.
pub const NAMES: [&str; 12] = [
    "bzip2", "crafty", "eon", "gap", "gcc", "gzip", "mcf", "parser", "perl", "twolf", "vortex",
    "vpr",
];

/// Returns all twelve benchmark models, in the paper's order.
pub fn all() -> Vec<BenchmarkModel> {
    vec![
        build(Mix {
            name: "bzip2",
            seed: 0xB21F_0001,
            instr_per_branch: 6,
            hot: (93, 0.41, 0.9992, 1.0),
            moderate: (40, 0.19),
            unbiased: (80, 0.27),
            cold: (53, 0.034),
            flip: (4, 0.010),
            rebias: (2, 0.020),
            late: (2, 0.045),
            induction: (1, 0.005),
            osc: (1, 0.004),
            group_flip: (6, 0.012),
            groups: vec![vec![0.45, 0.80]],
            input_dep: 0.004,
            eval_only: 0.55,
            paper: paper(
                "input.compressed",
                "input.source 10",
                19,
                282,
                109,
                6,
                15,
                44.1,
                26_400,
            ),
        }),
        build(Mix {
            name: "crafty",
            seed: 0xC4AF_0002,
            instr_per_branch: 7,
            hot: (250, 0.205, 0.9995, 1.0),
            moderate: (150, 0.23),
            unbiased: (370, 0.42),
            cold: (210, 0.036),
            flip: (80, 0.030),
            rebias: (10, 0.012),
            late: (4, 0.030),
            induction: (0, 0.0),
            osc: (3, 0.005),
            group_flip: (47, 0.022),
            groups: vec![vec![0.30], vec![0.01, 0.60, 0.85]],
            input_dep: 0.02,
            eval_only: 0.55,
            paper: paper(
                "ponder=on ver 0",
                "ponder=off ver 5 sd=12",
                45,
                1124,
                396,
                138,
                276,
                25.1,
                109_366,
            ),
        }),
        build(Mix {
            name: "eon",
            seed: 0xE0E0_0003,
            instr_per_branch: 8,
            hot: (87, 0.36, 0.9997, 1.0),
            moderate: (60, 0.24),
            unbiased: (120, 0.32),
            cold: (128, 0.031),
            flip: (2, 0.006),
            rebias: (1, 0.008),
            late: (1, 0.025),
            induction: (0, 0.0),
            osc: (0, 0.0),
            group_flip: (4, 0.010),
            groups: vec![vec![0.55]],
            input_dep: 0.002,
            eval_only: 0.50,
            paper: paper(
                "rushmeier input",
                "kajiya input",
                9,
                403,
                95,
                3,
                3,
                38.3,
                105_552,
            ),
        }),
        build(Mix {
            name: "gap",
            seed: 0x9A90_0004,
            instr_per_branch: 6,
            hot: (870, 0.46, 0.9994, 1.0),
            moderate: (420, 0.16),
            unbiased: (700, 0.25),
            cold: (849, 0.025),
            flip: (100, 0.030),
            rebias: (15, 0.015),
            late: (4, 0.035),
            induction: (2, 0.004),
            osc: (3, 0.005),
            group_flip: (48, 0.016),
            groups: vec![vec![0.25, 0.60], vec![0.01, 0.50]],
            input_dep: 0.007,
            eval_only: 0.55,
            paper: paper(
                "(test input)",
                "(train input)",
                10,
                3011,
                1045,
                167,
                201,
                52.5,
                36_728,
            ),
        }),
        build(Mix {
            name: "gcc",
            seed: 0x9CC0_0005,
            instr_per_branch: 6,
            hot: (2040, 0.60, 0.9990, 1.0),
            moderate: (800, 0.12),
            unbiased: (1230, 0.19),
            cold: (3846, 0.024),
            flip: (8, 0.008),
            rebias: (2, 0.010),
            late: (3, 0.030),
            induction: (1, 0.002),
            osc: (1, 0.002),
            group_flip: (12, 0.014),
            groups: vec![vec![0.40]],
            input_dep: 0.005,
            eval_only: 0.65,
            paper: paper(
                "-O0 cp-decl.i",
                "-O3 integrate.i",
                13,
                7943,
                2068,
                11,
                12,
                66.3,
                20_802,
            ),
        }),
        build(Mix {
            name: "gzip",
            seed: 0x92F0_0006,
            instr_per_branch: 6,
            hot: (50, 0.30, 0.9994, 1.0),
            moderate: (55, 0.24),
            unbiased: (110, 0.35),
            cold: (83, 0.030),
            flip: (5, 0.010),
            rebias: (4, 0.028),
            late: (2, 0.028),
            induction: (1, 0.004),
            osc: (1, 0.003),
            group_flip: (3, 0.007),
            groups: vec![vec![0.50]],
            input_dep: 0.004,
            eval_only: 0.50,
            paper: paper(
                "input.compressed 4",
                "input.source 10",
                14,
                314,
                66,
                7,
                12,
                35.4,
                43_043,
            ),
        }),
        build(Mix {
            name: "mcf",
            seed: 0x3CF0_0007,
            instr_per_branch: 6,
            hot: (165, 0.28, 0.9980, 1.0),
            moderate: (40, 0.21),
            unbiased: (90, 0.39),
            cold: (27, 0.020),
            flip: (15, 0.015),
            rebias: (8, 0.025),
            late: (3, 0.030),
            induction: (1, 0.004),
            osc: (2, 0.004),
            group_flip: (15, 0.012),
            groups: vec![vec![0.35, 0.70]],
            input_dep: 0.004,
            eval_only: 0.45,
            paper: paper(
                "(test input)",
                "(train input)",
                9,
                366,
                210,
                22,
                47,
                33.6,
                12_896,
            ),
        }),
        build(Mix {
            name: "parser",
            seed: 0xFA45_0008,
            instr_per_branch: 6,
            hot: (205, 0.215, 0.9995, 1.0),
            moderate: (230, 0.23),
            unbiased: (560, 0.45),
            cold: (479, 0.040),
            flip: (40, 0.018),
            rebias: (8, 0.010),
            late: (3, 0.022),
            induction: (0, 0.0),
            osc: (2, 0.003),
            group_flip: (25, 0.012),
            groups: vec![vec![0.45]],
            input_dep: 0.015,
            eval_only: 0.55,
            paper: paper(
                "(test input)",
                "(train input)",
                13,
                1552,
                284,
                53,
                124,
                26.3,
                50_643,
            ),
        }),
        build(Mix {
            name: "perl",
            seed: 0xFE41_0009,
            instr_per_branch: 6,
            hot: (990, 0.565, 0.9996, 1.0),
            moderate: (230, 0.13),
            unbiased: (420, 0.20),
            cold: (244, 0.019),
            flip: (35, 0.015),
            rebias: (8, 0.012),
            late: (4, 0.035),
            induction: (0, 0.0),
            osc: (2, 0.003),
            group_flip: (35, 0.016),
            groups: vec![vec![0.30, 0.65], vec![0.01, 0.45]],
            input_dep: 0.015,
            eval_only: 0.62,
            paper: paper(
                "scrabbl.pl",
                "diffmail.pl",
                35,
                1968,
                1075,
                58,
                64,
                63.4,
                55_382,
            ),
        }),
        build(Mix {
            name: "twolf",
            seed: 0x7820_000A,
            instr_per_branch: 7,
            hot: (410, 0.29, 0.9998, 1.0),
            moderate: (250, 0.25),
            unbiased: (520, 0.38),
            cold: (333, 0.030),
            flip: (10, 0.008),
            rebias: (3, 0.010),
            late: (2, 0.020),
            induction: (0, 0.0),
            osc: (1, 0.002),
            group_flip: (13, 0.010),
            groups: vec![vec![0.50]],
            input_dep: 0.004,
            eval_only: 0.50,
            paper: paper(
                "(train input) fast 3",
                "(ref input) fast 1",
                36,
                1542,
                440,
                19,
                22,
                32.1,
                165_711,
            ),
        }),
        build(Mix {
            name: "vortex",
            seed: 0x604E_000B,
            instr_per_branch: 6,
            hot: (1480, 0.80, 0.9997, 1.0),
            moderate: (430, 0.045),
            unbiased: (800, 0.045),
            cold: (593, 0.014),
            flip: (30, 0.012),
            rebias: (5, 0.008),
            late: (4, 0.030),
            induction: (1, 0.002),
            osc: (2, 0.003),
            group_flip: (139, 0.030),
            groups: vec![
                vec![0.01, 0.18],
                vec![0.18, 0.55],
                vec![0.01, 0.35, 0.70],
                vec![0.35, 0.70],
                vec![0.01, 0.55],
                vec![0.70, 0.90],
            ],
            input_dep: 0.004,
            eval_only: 0.50,
            paper: paper(
                "(train input)",
                "(reduced ref input)",
                32,
                3484,
                1671,
                67,
                104,
                88.5,
                92_163,
            ),
        }),
        build(Mix {
            name: "vpr",
            seed: 0x6F40_000C,
            instr_per_branch: 7,
            hot: (290, 0.285, 0.9995, 1.0),
            moderate: (120, 0.26),
            unbiased: (220, 0.38),
            cold: (79, 0.025),
            flip: (15, 0.010),
            rebias: (5, 0.010),
            late: (2, 0.018),
            induction: (0, 0.0),
            osc: (1, 0.002),
            group_flip: (26, 0.012),
            groups: vec![vec![0.40], vec![0.01, 0.65]],
            input_dep: 0.015,
            eval_only: 0.50,
            paper: paper(
                "-bend_cost 2.0",
                "-bend_cost 1.0",
                21,
                758,
                340,
                16,
                38,
                31.6,
                65_588,
            ),
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::InputId;

    #[test]
    fn twelve_benchmarks_in_paper_order() {
        let models = all();
        assert_eq!(models.len(), 12);
        for (m, n) in models.iter().zip(NAMES) {
            assert_eq!(m.name, n);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(benchmark("vortex").unwrap().name, "vortex");
        assert!(benchmark("spice").is_none());
    }

    #[test]
    fn static_branch_counts_match_paper_touch_counts() {
        for m in all() {
            assert_eq!(
                m.static_branches(),
                m.paper.touched,
                "{}: static branches should equal the paper's touch count",
                m.name
            );
        }
    }

    #[test]
    fn weight_shares_are_near_one() {
        for m in all() {
            let total: f64 = m.groups.iter().map(|g| g.weight_share).sum();
            assert!(
                (0.95..=1.05).contains(&total),
                "{}: shares sum to {total}",
                m.name
            );
        }
    }

    #[test]
    fn group_flip_models_have_schedules() {
        for m in all() {
            let has_gf = m.groups.iter().any(|g| g.in_phase_groups);
            if has_gf {
                assert!(
                    !m.phase_groups.is_empty(),
                    "{}: group-flip branches need phase schedules",
                    m.name
                );
            }
        }
    }

    #[test]
    fn vortex_has_139_group_flip_branches_in_six_groups() {
        let v = benchmark("vortex").unwrap();
        let gf = v.groups.iter().find(|g| g.label == "group-flip").unwrap();
        assert_eq!(gf.count, 139);
        assert_eq!(v.phase_groups.len(), 6);
    }

    #[test]
    fn populations_instantiate_and_trace() {
        for m in all() {
            let pop = m.population(100_000);
            assert_eq!(pop.static_branches() as u32, m.paper.touched);
            let n = pop.trace(InputId::Eval, 1000, 1).count();
            assert_eq!(n, 1000, "{}", m.name);
            let n = pop.trace(InputId::Profile, 1000, 1).count();
            assert_eq!(n, 1000, "{}", m.name);
        }
    }

    #[test]
    fn seeds_are_unique() {
        let models = all();
        for i in 0..models.len() {
            for j in i + 1..models.len() {
                assert_ne!(models[i].seed, models[j].seed);
            }
        }
    }
}
