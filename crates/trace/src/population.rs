//! Population groups and archetype templates.
//!
//! A benchmark model is described as a small set of [`PopulationGroup`]s —
//! "N branches of this archetype carrying this share of dynamic execution".
//! Instantiation expands each group into concrete [`StaticBranchSpec`]s with
//! per-branch randomized parameters, drawn deterministically from the model
//! seed.

use crate::behavior::{Behavior, Phase};
use crate::branch::StaticBranchSpec;
use crate::rng::Xoshiro256;

/// Inclusive-exclusive parameter range used by archetype templates.
pub type Range = (f64, f64);

fn draw(rng: &mut Xoshiro256, r: Range) -> f64 {
    rng.gen_range_f64(r.0, r.1)
}

/// What a [`Archetype::LateFlip`] branch does after its flip point.
///
/// The mixture mirrors the paper's Figure 6: when a branch leaves its biased
/// behavior it most often *softens* (same direction, weaker bias) and in
/// roughly 20% of cases becomes perfectly biased in the *other* direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AfterFlip {
    /// Perfectly biased in the opposite direction.
    Reverse,
    /// Same direction, reduced bias drawn from the range.
    Soften(Range),
    /// Essentially random outcomes drawn from the range (around 0.5).
    Unbiased(Range),
}

/// A parameterized branch-behavior template.
///
/// Ranges are taken-probabilities of the branch's *majority direction*;
/// whether that direction is taken or not-taken is randomized separately.
/// Execution-index thresholds are expressed as fractions of the branch's
/// expected execution count so that models are scale-invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum Archetype {
    /// Stationary, highly biased (the speculation targets).
    StableBiased {
        /// Bias range, e.g. `(0.996, 1.0)`.
        bias: Range,
    },
    /// Stationary, moderately biased — below any sane speculation threshold.
    Moderate {
        /// Bias range, e.g. `(0.90, 0.99)`.
        bias: Range,
    },
    /// Stationary, unbiased.
    Unbiased {
        /// Bias range, e.g. `(0.5, 0.85)`.
        bias: Range,
    },
    /// Biased for an initial period, then changes per [`AfterFlip`].
    ///
    /// These are the dangerous branches of the paper's Figure 3: nothing in
    /// their initial outcome stream distinguishes them from truly biased
    /// branches.
    LateFlip {
        /// Initial bias range.
        initial: Range,
        /// Flip point as a fraction of expected executions.
        flip_frac: Range,
        /// Post-flip behavior mixture; one entry is drawn uniformly.
        after: Vec<AfterFlip>,
    },
    /// Biased, then a dip of unbiased behavior, then biased again.
    ///
    /// The middle branch of the paper's Figure 3 (average bias ~60% but two
    /// exploitable highly-biased regions) is this shape. Only a reactive
    /// controller with both eviction *and* revisit arcs can exploit both
    /// regions.
    Rebias {
        /// Bias during the biased regions.
        bias: Range,
        /// Bias during the dip.
        dip: Range,
        /// End of the first biased region (fraction of expected execs).
        first_end: Range,
        /// Length of the dip (fraction of expected execs).
        dip_len: Range,
    },
    /// Unbiased at first, becoming biased later — only the revisit arc
    /// (unbiased → monitor) can harvest these.
    LateBias {
        /// Bias before the switch.
        before: Range,
        /// Switch point as a fraction of expected executions.
        start_frac: Range,
        /// Bias after the switch.
        bias: Range,
    },
    /// The paper's induction-variable example: deterministically one
    /// direction for the first 32,768 executions, then the other, forever.
    Induction,
    /// Alternates between biased and unbiased on a fixed period — the
    /// pathological oscillators that motivate the oscillation cap.
    Oscillator {
        /// Period as a fraction of expected executions.
        period_frac: Range,
        /// Bias during the "good" half-period.
        high: Range,
        /// Bias during the "bad" half-period.
        low: Range,
    },
    /// Biased with periodic short bursts of misbehavior — exercises the
    /// eviction hysteresis (short bursts should *not* evict).
    Bursty {
        /// Bias outside bursts.
        base: Range,
        /// Taken-probability inside bursts.
        burst: Range,
        /// Burst period as a fraction of expected executions.
        period_frac: Range,
        /// Burst length as a fraction of the period.
        burst_len_frac: Range,
    },
    /// Behavior tied to a correlated phase group: biased while the group is
    /// inactive, degraded while active (Figure 9).
    GroupFlip {
        /// Bias while the group is inactive.
        biased: Range,
        /// Taken-probability of the majority direction while active.
        degraded: Range,
    },
}

impl Archetype {
    /// Instantiates a concrete [`Behavior`] for one branch.
    ///
    /// `expected_execs` is the number of times the branch is expected to
    /// execute on the evaluation input; fraction-based thresholds are scaled
    /// by it.
    pub fn instantiate(&self, rng: &mut Xoshiro256, expected_execs: u64) -> Behavior {
        let execs = expected_execs.max(4) as f64;
        match self {
            Archetype::StableBiased { bias }
            | Archetype::Moderate { bias }
            | Archetype::Unbiased { bias } => Behavior::Fixed {
                p_taken: draw(rng, *bias),
            },
            Archetype::LateFlip {
                initial,
                flip_frac,
                after,
            } => {
                let before = draw(rng, *initial);
                let flip_at = (draw(rng, *flip_frac) * execs) as u64;
                let choice = &after[rng.gen_range(after.len() as u64) as usize];
                let post = match choice {
                    AfterFlip::Reverse => 1.0 - draw(rng, (0.98, 1.0)),
                    AfterFlip::Soften(r) => draw(rng, *r),
                    AfterFlip::Unbiased(r) => draw(rng, *r),
                };
                Behavior::flip(before, post, flip_at.max(1))
            }
            Archetype::Rebias {
                bias,
                dip,
                first_end,
                dip_len,
            } => {
                let b1 = draw(rng, *bias);
                let b2 = draw(rng, *bias);
                let d = draw(rng, *dip);
                let end1 = (draw(rng, *first_end) * execs) as u64;
                let dlen = (draw(rng, *dip_len) * execs) as u64;
                Behavior::MultiPhase {
                    phases: vec![
                        Phase {
                            len: end1.max(1),
                            p_taken: b1,
                        },
                        Phase {
                            len: dlen.max(1),
                            p_taken: d,
                        },
                        Phase {
                            len: u64::MAX,
                            p_taken: b2,
                        },
                    ],
                }
            }
            Archetype::LateBias {
                before,
                start_frac,
                bias,
            } => {
                let pre = draw(rng, *before);
                let start = (draw(rng, *start_frac) * execs) as u64;
                let post = draw(rng, *bias);
                Behavior::flip(pre, post, start.max(1))
            }
            Archetype::Induction => {
                // The paper's example flips at exactly 32,768 executions; for
                // branches too cold to reach that, flip midway so the shape
                // (deterministic single flip) is preserved.
                let flip_at = if expected_execs > 65_536 {
                    32_768
                } else {
                    (expected_execs / 2).max(1)
                };
                Behavior::Induction { flip_at }
            }
            Archetype::Oscillator {
                period_frac,
                high,
                low,
            } => {
                // The pathological oscillators re-enter the biased state
                // quickly after every eviction: mostly-biased behavior with
                // short recurring bursts of misbehavior. Each burst is long
                // enough to trip the eviction counter, but the following
                // monitor window lands back in biased behavior, so the
                // branch cycles enter → evict → re-enter until capped.
                let period = ((draw(rng, *period_frac) * execs) as u64).max(3_000);
                let burst_len = (period / 80).clamp(30, 40);
                Behavior::PeriodicBurst {
                    base: draw(rng, *high),
                    burst: draw(rng, *low),
                    period,
                    burst_len,
                    // Keep the first classification window burst-free so the
                    // branch is selected promptly and then oscillates.
                    phase: burst_len,
                }
            }
            Archetype::Bursty {
                base,
                burst,
                period_frac,
                burst_len_frac,
            } => {
                let period = ((draw(rng, *period_frac) * execs) as u64).max(4);
                let burst_len = ((draw(rng, *burst_len_frac) * period as f64) as u64).max(1);
                Behavior::PeriodicBurst {
                    base: draw(rng, *base),
                    burst: draw(rng, *burst),
                    period,
                    burst_len,
                    phase: burst_len,
                }
            }
            Archetype::GroupFlip { biased, degraded } => Behavior::Grouped {
                in_phase: draw(rng, *degraded),
                out_phase: draw(rng, *biased),
            },
        }
    }
}

/// A set of branches sharing an archetype and a slice of dynamic execution.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationGroup {
    /// Human-readable label (appears in diagnostics).
    pub label: &'static str,
    /// Number of static branches in the group.
    pub count: u32,
    /// Share of total dynamic events carried by the group (normalized
    /// across all groups of the model at instantiation time).
    pub weight_share: f64,
    /// Zipf exponent for the within-group weight distribution (0 = flat).
    pub zipf_exponent: f64,
    /// Behavior template.
    pub archetype: Archetype,
    /// Fraction of branches whose direction inverts on the profile input.
    pub input_dep_frac: f64,
    /// Fraction of branches that never execute on the profile input.
    pub eval_only_frac: f64,
    /// Fraction of branches that never execute on the evaluation input.
    pub profile_only_frac: f64,
    /// Distribute branches round-robin over the model's phase groups
    /// (required for [`Archetype::GroupFlip`]).
    pub in_phase_groups: bool,
}

impl PopulationGroup {
    /// Creates a group with no input sensitivity and flat defaults.
    pub fn new(
        label: &'static str,
        count: u32,
        weight_share: f64,
        zipf_exponent: f64,
        archetype: Archetype,
    ) -> Self {
        PopulationGroup {
            label,
            count,
            weight_share,
            zipf_exponent,
            archetype,
            input_dep_frac: 0.0,
            eval_only_frac: 0.0,
            profile_only_frac: 0.0,
            in_phase_groups: false,
        }
    }

    /// Sets the fraction of input-direction-dependent branches.
    pub fn with_input_dep(mut self, frac: f64) -> Self {
        self.input_dep_frac = frac;
        self
    }

    /// Sets the fraction of branches missing from the profile input.
    pub fn with_eval_only(mut self, frac: f64) -> Self {
        self.eval_only_frac = frac;
        self
    }

    /// Sets the fraction of branches missing from the evaluation input.
    pub fn with_profile_only(mut self, frac: f64) -> Self {
        self.profile_only_frac = frac;
        self
    }

    /// Marks the group as participating in correlated phase groups.
    pub fn with_phase_groups(mut self) -> Self {
        self.in_phase_groups = true;
        self
    }
}

/// Expands a group into concrete branch specs.
///
/// `total_share` is the sum of `weight_share` across the model's groups
/// (used for normalization); `events_hint` sizes fraction-based behavior
/// thresholds; `phase_group_count` is the number of group schedules
/// available for round-robin assignment.
pub(crate) fn instantiate_group(
    group: &PopulationGroup,
    rng: &mut Xoshiro256,
    total_share: f64,
    events_hint: u64,
    phase_group_count: usize,
    out: &mut Vec<StaticBranchSpec>,
) {
    let weights = crate::zipf::zipf_weights(
        group.count as usize,
        group.zipf_exponent,
        group.weight_share / total_share,
    );
    for (i, w) in weights.into_iter().enumerate() {
        let expected = (w * events_hint as f64).max(1.0) as u64;
        let behavior = group.archetype.instantiate(rng, expected);
        let u = rng.next_f64();
        // Mutually exclusive coverage classes drawn from one uniform.
        let eval_only = u < group.eval_only_frac;
        let profile_only = !eval_only && u < group.eval_only_frac + group.profile_only_frac;
        let spec = StaticBranchSpec {
            behavior,
            eval_weight: if profile_only { 0.0 } else { w },
            profile_weight: if eval_only { 0.0 } else { w },
            invert_on_profile: rng.gen_bool(group.input_dep_frac),
            invert_direction: rng.gen_bool(0.5),
            group: if group.in_phase_groups && phase_group_count > 0 {
                Some(crate::ids::GroupId::new((i % phase_group_count) as u16))
            } else {
                None
            },
        };
        out.push(spec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::InputId;

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from(42)
    }

    #[test]
    fn stable_biased_draws_within_range() {
        let a = Archetype::StableBiased { bias: (0.996, 1.0) };
        let mut r = rng();
        for _ in 0..100 {
            match a.instantiate(&mut r, 10_000) {
                Behavior::Fixed { p_taken } => assert!((0.996..1.0).contains(&p_taken)),
                other => panic!("unexpected behavior {other:?}"),
            }
        }
    }

    #[test]
    fn late_flip_produces_two_phases() {
        let a = Archetype::LateFlip {
            initial: (0.999, 1.0),
            flip_frac: (0.3, 0.5),
            after: vec![AfterFlip::Reverse],
        };
        let b = a.instantiate(&mut rng(), 100_000);
        match &b {
            Behavior::MultiPhase { phases } => {
                assert_eq!(phases.len(), 2);
                assert!(phases[0].len >= 30_000 && phases[0].len <= 50_000);
                assert!(phases[0].p_taken >= 0.999);
                assert!(phases[1].p_taken <= 0.02, "reverse flip should invert bias");
            }
            other => panic!("unexpected behavior {other:?}"),
        }
    }

    #[test]
    fn rebias_has_three_phases_with_dip() {
        let a = Archetype::Rebias {
            bias: (0.995, 1.0),
            dip: (0.4, 0.6),
            first_end: (0.2, 0.3),
            dip_len: (0.2, 0.3),
        };
        match a.instantiate(&mut rng(), 1_000_000) {
            Behavior::MultiPhase { phases } => {
                assert_eq!(phases.len(), 3);
                assert!(phases[1].p_taken < 0.7);
                assert!(phases[2].p_taken > 0.99);
            }
            other => panic!("unexpected behavior {other:?}"),
        }
    }

    #[test]
    fn induction_uses_paper_constant_when_hot() {
        assert_eq!(
            Archetype::Induction.instantiate(&mut rng(), 1_000_000),
            Behavior::Induction { flip_at: 32_768 }
        );
        // Cold branches flip midway instead.
        assert_eq!(
            Archetype::Induction.instantiate(&mut rng(), 1000),
            Behavior::Induction { flip_at: 500 }
        );
    }

    #[test]
    fn group_instantiation_counts_and_normalization() {
        let g = PopulationGroup::new(
            "hot",
            10,
            0.5,
            1.0,
            Archetype::StableBiased { bias: (0.996, 1.0) },
        );
        let mut out = Vec::new();
        instantiate_group(&g, &mut rng(), 1.0, 1_000_000, 0, &mut out);
        assert_eq!(out.len(), 10);
        let total: f64 = out.iter().map(|b| b.eval_weight).sum();
        assert!(
            (total - 0.5).abs() < 1e-9,
            "weights should sum to share, got {total}"
        );
        // Zipf: first branch hottest.
        assert!(out[0].eval_weight > out[9].eval_weight);
    }

    #[test]
    fn eval_only_branches_have_zero_profile_weight() {
        let g = PopulationGroup::new(
            "cov",
            200,
            0.2,
            0.0,
            Archetype::StableBiased { bias: (0.996, 1.0) },
        )
        .with_eval_only(1.0);
        let mut out = Vec::new();
        instantiate_group(&g, &mut rng(), 1.0, 100_000, 0, &mut out);
        assert!(out.iter().all(|b| b.profile_weight == 0.0));
        assert!(out.iter().all(|b| b.eval_weight > 0.0));
    }

    #[test]
    fn input_dep_fraction_is_respected() {
        let g = PopulationGroup::new(
            "dep",
            1000,
            0.1,
            0.0,
            Archetype::StableBiased { bias: (0.996, 1.0) },
        )
        .with_input_dep(0.5);
        let mut out = Vec::new();
        instantiate_group(&g, &mut rng(), 1.0, 100_000, 0, &mut out);
        let dep = out.iter().filter(|b| b.invert_on_profile).count();
        assert!((400..600).contains(&dep), "got {dep}");
        // Input-dependent branches behave differently per input.
        let b = out.iter().find(|b| b.invert_on_profile).unwrap();
        assert_ne!(b.inverted(InputId::Profile), b.inverted(InputId::Eval));
    }

    #[test]
    fn phase_group_assignment_round_robins() {
        let g = PopulationGroup::new(
            "grp",
            6,
            0.1,
            0.0,
            Archetype::GroupFlip {
                biased: (0.996, 1.0),
                degraded: (0.2, 0.6),
            },
        )
        .with_phase_groups();
        let mut out = Vec::new();
        instantiate_group(&g, &mut rng(), 1.0, 100_000, 3, &mut out);
        let ids: Vec<usize> = out.iter().map(|b| b.group.unwrap().index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn direction_inversion_is_roughly_half() {
        let g = PopulationGroup::new(
            "dir",
            2000,
            0.1,
            0.0,
            Archetype::Unbiased { bias: (0.5, 0.85) },
        );
        let mut out = Vec::new();
        instantiate_group(&g, &mut rng(), 1.0, 100_000, 0, &mut out);
        let inv = out.iter().filter(|b| b.invert_direction).count();
        assert!((900..1100).contains(&inv), "got {inv}");
    }
}
