//! Static branch specifications.

use crate::behavior::Behavior;
use crate::ids::{GroupId, InputId};

/// The full generative specification of one static branch.
///
/// A branch has one [`Behavior`] (shared across inputs — program structure
/// does not change with the data set) plus per-input execution weights and
/// an optional input-dependent direction inversion. Together these model the
/// two cross-input effects the paper identifies: predicates whose direction
/// is a function of the input, and code regions exercised by only one input.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticBranchSpec {
    /// Outcome model as a function of execution index.
    pub behavior: Behavior,
    /// Relative execution weight on the evaluation input. Zero means the
    /// branch never executes on that input.
    pub eval_weight: f64,
    /// Relative execution weight on the profile input.
    pub profile_weight: f64,
    /// If `true`, outcomes are inverted on the profile input: the branch is
    /// biased one way for one data set and the other way for the other.
    pub invert_on_profile: bool,
    /// If `true`, the branch's baseline direction is inverted on *both*
    /// inputs (so populations contain a mix of taken-biased and
    /// not-taken-biased branches).
    pub invert_direction: bool,
    /// Correlated phase group, if any (Figure 9 behavior).
    pub group: Option<GroupId>,
}

impl StaticBranchSpec {
    /// Creates a plain branch with the same weight on both inputs.
    pub fn new(behavior: Behavior, weight: f64) -> Self {
        StaticBranchSpec {
            behavior,
            eval_weight: weight,
            profile_weight: weight,
            invert_on_profile: false,
            invert_direction: false,
            group: None,
        }
    }

    /// Returns the execution weight on `input`.
    pub fn weight(&self, input: InputId) -> f64 {
        match input {
            InputId::Profile => self.profile_weight,
            InputId::Eval => self.eval_weight,
        }
    }

    /// Returns `true` if raw outcomes should be inverted on `input`.
    pub fn inverted(&self, input: InputId) -> bool {
        let base = self.invert_direction;
        match input {
            InputId::Profile => base ^ self.invert_on_profile,
            InputId::Eval => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_branch_has_symmetric_weights() {
        let b = StaticBranchSpec::new(Behavior::Fixed { p_taken: 0.9 }, 2.0);
        assert_eq!(b.weight(InputId::Profile), 2.0);
        assert_eq!(b.weight(InputId::Eval), 2.0);
        assert!(!b.inverted(InputId::Profile));
        assert!(!b.inverted(InputId::Eval));
    }

    #[test]
    fn profile_inversion_only_affects_profile_input() {
        let mut b = StaticBranchSpec::new(Behavior::Fixed { p_taken: 0.99 }, 1.0);
        b.invert_on_profile = true;
        assert!(b.inverted(InputId::Profile));
        assert!(!b.inverted(InputId::Eval));
    }

    #[test]
    fn direction_inversion_composes_with_profile_inversion() {
        let mut b = StaticBranchSpec::new(Behavior::Fixed { p_taken: 0.99 }, 1.0);
        b.invert_direction = true;
        b.invert_on_profile = true;
        // Base direction inverted everywhere; profile inversion cancels it
        // on the profile input.
        assert!(!b.inverted(InputId::Profile));
        assert!(b.inverted(InputId::Eval));
    }
}
