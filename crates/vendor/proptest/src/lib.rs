//! Offline drop-in subset of the `proptest` API.
//!
//! This container has no network access and no crates.io cache, so the
//! workspace vendors the small slice of proptest it actually uses:
//! strategies over ranges/tuples/collections, `any::<T>()`, `prop_map`,
//! `prop::{collection, sample, option}`, the `proptest!` macro, and the
//! `prop_assert*` / `prop_assume!` family. Semantics differ from upstream
//! in two deliberate ways:
//!
//! * **no shrinking** — a failing case panics with the generated inputs
//!   left in the assertion message rather than a minimized counterexample;
//! * **deterministic seeding** — every test derives its RNG seed from its
//!   module path and name, so failures reproduce exactly across runs.
//!
//! `.proptest-regressions` files are ignored. The surface is intentionally
//! minimal; extend it as tests need more of the upstream API.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (`vec`).
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        pub(crate) lo: usize,
        /// Exclusive upper bound.
        pub(crate) hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Strategies that sample from explicit value lists.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from `options` (cloned per case).
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod option {
    //! Strategies for `Option`.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `None` about a quarter of the time and
    /// `Some(inner)` otherwise (matching upstream's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface test files expect.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced access to the strategy modules (`prop::collection::vec`,
    /// `prop::sample::select`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Defines property tests. Each `#[test] fn name(arg in strategy, ...)`
/// item becomes a normal test that runs the body over `cases` generated
/// inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let strategies = ($($strat,)+);
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts < config.cases.saturating_mul(100).max(1000),
                    "too many prop_assume rejections"
                );
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if outcome.is_ok() {
                    accepted += 1;
                }
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

/// Like `assert!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Like `assert_eq!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Like `assert_ne!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case (with replacement) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}
