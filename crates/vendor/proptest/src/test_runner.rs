//! Configuration and RNG for the vendored proptest subset.

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; tests here drive whole trace pipelines
        // per case, so keep the un-configured default moderate.
        ProptestConfig { cases: 64 }
    }
}

/// Marker returned by `prop_assume!` when a case is rejected.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// Deterministic RNG (splitmix64) seeded from the test's identity, so a
/// failure reproduces bit-identically on re-run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; the tiny modulo bias is irrelevant for testing.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_test("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_and_unit_are_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
            let f = rng.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
