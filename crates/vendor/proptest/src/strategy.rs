//! The [`Strategy`] trait and the primitive strategies built on it.

use crate::test_runner::TestRng;

/// A generator of test values. Unlike upstream proptest there is no value
/// tree and no shrinking: a strategy simply produces one value per case.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Produces arbitrary values of `T` (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a full-domain uniform generator.
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.unit_f64() as f32
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: below() cannot express it.
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Include the upper endpoint with small probability so
                // boundary behavior (e.g. p == 1.0) is exercised.
                if rng.below(64) == 0 {
                    return hi;
                }
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
range_strategy_float!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
}
