//! Offline drop-in subset of the `criterion` API.
//!
//! The container building this workspace has no crates.io access, so the
//! bench targets link against this minimal vendored implementation instead
//! of the real criterion. It preserves the API shape the benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `Bencher::iter`/`iter_batched`, `Throughput`,
//! `BatchSize`) and reports median wall-clock time per iteration — no
//! statistical analysis, plots, or HTML reports.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. All variants behave the same
/// here: setup runs once per measured batch and is excluded from timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Optional throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    fn new(target_samples: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            target_samples,
        }
    }

    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Measures `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort_unstable();
        Some(self.samples[self.samples.len() / 2])
    }
}

fn report(name: &str, median: Option<Duration>, throughput: Option<Throughput>) {
    match median {
        None => println!("bench {name:<40} (no samples)"),
        Some(m) => {
            let per = match throughput {
                Some(Throughput::Elements(n)) if m.as_secs_f64() > 0.0 => {
                    format!("  {:.2e} elem/s", n as f64 / m.as_secs_f64())
                }
                Some(Throughput::Bytes(n)) if m.as_secs_f64() > 0.0 => {
                    format!("  {:.2e} B/s", n as f64 / m.as_secs_f64())
                }
                _ => String::new(),
            };
            println!("bench {name:<40} median {m:?}{per}");
        }
    }
}

/// Benchmark driver. `sample_size` bounds the number of timed iterations.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // The real criterion defaults to 100 samples plus warm-up; keep the
        // vendored loop short so `cargo bench` stays usable on big inputs.
        Criterion { sample_size: 12 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, b.median(), None);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates benches in this group with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name),
            b.median(),
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
