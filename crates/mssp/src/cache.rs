//! Set-associative cache model with LRU replacement.

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The block was present.
    Hit,
    /// The block was absent and has been filled.
    Miss,
}

/// A set-associative, write-allocate cache with true-LRU replacement.
///
/// Only hit/miss behavior is modeled (timing lives in the core models).
///
/// # Examples
///
/// ```
/// use rsc_mssp::cache::{Access, Cache};
/// let mut c = Cache::new(1, 1, 64); // 1 KiB direct-mapped, 64 B blocks
/// assert_eq!(c.access(0x0), Access::Miss);
/// assert_eq!(c.access(0x8), Access::Hit); // same block
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<u64>>, // tags, most-recently-used first
    assoc: usize,
    block_shift: u32,
    set_mask: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `kib` KiB with `assoc` ways and `block_bytes`
    /// blocks.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, non-power-of-two
    /// block size, or fewer than one set).
    pub fn new(kib: u32, assoc: u32, block_bytes: u32) -> Self {
        assert!(
            kib > 0 && assoc > 0 && block_bytes > 0,
            "cache geometry must be positive"
        );
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        let blocks = kib as u64 * 1024 / block_bytes as u64;
        let sets = (blocks / assoc as u64).max(1);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: vec![Vec::with_capacity(assoc as usize); sets as usize],
            assoc: assoc as usize,
            block_shift: block_bytes.trailing_zeros(),
            set_mask: sets - 1,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses `addr`, updating LRU state and filling on a miss.
    pub fn access(&mut self, addr: u64) -> Access {
        let block = addr >> self.block_shift;
        let set = (block & self.set_mask) as usize;
        let tag = block >> self.sets.len().trailing_zeros();
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            let t = ways.remove(pos);
            ways.insert(0, t);
            self.hits += 1;
            Access::Hit
        } else {
            if ways.len() >= self.assoc {
                ways.pop();
            }
            ways.insert(0, tag);
            self.misses += 1;
            Access::Miss
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate over all accesses (0 if none).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Number of sets (exposed for tests and diagnostics).
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }
}

/// A caller-held flat mirror of a [`Cache`]'s contents: the batched
/// timing loop's cache fast path.
///
/// The shadow stores every set's blocks MRU-first in one contiguous
/// array (`sets * assoc` slots, `u64::MAX` marking an empty way), so an
/// access is a strided scan of at most `assoc` adjacent words and an LRU
/// rotation is a `copy_within` of the few words in front of the hit —
/// no per-set `Vec` headers to chase and no `remove`/`insert` shuffles.
/// The leading slot is the set's MRU block, which makes the dominant
/// repeat-access pattern a single compare. Replacement semantics are
/// exactly [`Cache::access`]'s true-LRU, and the hit/miss counters keep
/// living on the shadowed `Cache`, which stays the one source of
/// accounting truth.
///
/// [`ShadowCache::access`] is bit-identical to [`Cache::access`]
/// **provided every access to the underlying cache flows through the
/// same shadow for the shadow's lifetime**: the shadow owns the
/// *contents* from construction on, so an access that bypasses it leaves
/// the two copies permanently diverged. The chunked machine loops
/// therefore create one shadow per cache per run and route all traffic
/// through it; the per-event oracle path never constructs one.
#[derive(Debug, Clone)]
pub struct ShadowCache {
    /// `sets * assoc` block numbers, each set's ways adjacent and
    /// MRU-first; `u64::MAX` means "empty way" (addresses are < 2^48, so
    /// real block numbers never collide with the sentinel).
    ways: Box<[u64]>,
    assoc: usize,
    block_shift: u32,
    set_mask: u64,
}

impl ShadowCache {
    /// Creates a shadow holding `cache`'s current contents (empty sets
    /// included), after which all accesses must flow through it.
    pub fn new(cache: &Cache) -> Self {
        let assoc = cache.assoc;
        let set_bits = cache.sets.len().trailing_zeros();
        let mut ways = vec![u64::MAX; cache.sets.len() * assoc].into_boxed_slice();
        for (s, set) in cache.sets.iter().enumerate() {
            for (i, &tag) in set.iter().enumerate() {
                ways[s * assoc + i] = (tag << set_bits) | s as u64;
            }
        }
        ShadowCache {
            ways,
            assoc,
            block_shift: cache.block_shift,
            set_mask: cache.set_mask,
        }
    }

    /// Accesses `addr` through the shadow, updating `cache`'s hit/miss
    /// counters; identical results to [`Cache::access`] under the
    /// exclusive-routing invariant above.
    #[inline]
    pub fn access(&mut self, cache: &mut Cache, addr: u64) -> Access {
        let a = self.access_uncounted(addr);
        match a {
            Access::Hit => cache.hits += 1,
            Access::Miss => cache.misses += 1,
        }
        a
    }

    /// [`ShadowCache::access`] without the counter update, for hot loops
    /// that tally hits/misses in locals and flush them to the shadowed
    /// [`Cache`] once per batch (the totals are what must stay identical).
    #[inline]
    pub fn access_uncounted(&mut self, addr: u64) -> Access {
        let block = addr >> self.block_shift;
        let start = (block & self.set_mask) as usize * self.assoc;
        let ways = &mut self.ways[start..start + self.assoc];
        if ways[0] == block {
            // The block is already this set's MRU: hit, LRU unchanged.
            return Access::Hit;
        }
        for i in 1..ways.len() {
            if ways[i] == block {
                ways.copy_within(0..i, 1);
                ways[0] = block;
                return Access::Hit;
            }
        }
        // Miss: shift every way down (the last one — LRU or an empty
        // sentinel — falls off) and fill the MRU slot.
        ways.copy_within(0..self.assoc - 1, 1);
        ways[0] = block;
        Access::Miss
    }
}

/// Adds externally tallied hit/miss counts to a cache's counters: the
/// flush half of the [`ShadowCache::access_uncounted`] protocol.
impl Cache {
    /// Credits `hits` and `misses` accumulated outside [`Cache::access`].
    pub fn add_counts(&mut self, hits: u64, misses: u64) {
        self.hits += hits;
        self.misses += misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = Cache::new(64, 2, 64);
        assert_eq!(c.set_count(), 64 * 1024 / 64 / 2);
    }

    #[test]
    fn same_block_hits() {
        let mut c = Cache::new(8, 2, 64);
        assert_eq!(c.access(100), Access::Miss);
        assert_eq!(c.access(101), Access::Hit);
        assert_eq!(c.access(163), Access::Miss, "next block");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Direct construction of a 2-way set: three conflicting blocks.
        let mut c = Cache::new(1, 2, 64); // 8 sets
        let stride = 8 * 64; // same set, different tags
        assert_eq!(c.access(0), Access::Miss);
        assert_eq!(c.access(stride), Access::Miss);
        assert_eq!(c.access(0), Access::Hit); // 0 now MRU
        assert_eq!(c.access(2 * stride), Access::Miss); // evicts `stride`
        assert_eq!(c.access(0), Access::Hit);
        assert_eq!(c.access(stride), Access::Miss, "was evicted");
    }

    #[test]
    fn small_cache_thrashes_large_working_set() {
        let mut small = Cache::new(8, 8, 64);
        let mut large = Cache::new(1024, 8, 64);
        // 256 KiB working set, streamed twice.
        for pass in 0..2 {
            for i in 0..4096u64 {
                let addr = i * 64;
                let a = small.access(addr);
                let b = large.access(addr);
                if pass == 1 {
                    assert_eq!(a, Access::Miss, "8 KiB cannot hold 256 KiB");
                    let _ = b;
                }
            }
        }
        assert!(small.miss_rate() > large.miss_rate());
    }

    #[test]
    fn miss_rate_zero_when_untouched() {
        let c = Cache::new(8, 2, 64);
        assert_eq!(c.miss_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_block_size() {
        Cache::new(8, 2, 48);
    }

    #[test]
    fn shadow_is_bit_identical_to_direct_access() {
        for (kib, assoc) in [(8, 2), (64, 8), (1, 1)] {
            let mut plain = Cache::new(kib, assoc, 64);
            let mut shadowed = Cache::new(kib, assoc, 64);
            let mut shadow = ShadowCache::new(&shadowed);
            // A mix of repeats, conflicts, and strides; LCG-driven.
            let mut x = 0xDEADBEEFu64;
            for i in 0..20_000u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let addr = if i % 3 == 0 {
                    (x >> 40) % 512
                } else {
                    (x >> 40) % (64 * 1024)
                };
                assert_eq!(
                    plain.access(addr),
                    shadow.access(&mut shadowed, addr),
                    "{kib} KiB {assoc}-way"
                );
            }
            assert_eq!(plain.hits(), shadowed.hits());
            assert_eq!(plain.misses(), shadowed.misses());
        }
    }

    #[test]
    fn shadow_of_a_warm_cache_keeps_its_contents_and_lru_order() {
        let mut plain = Cache::new(1, 2, 64); // 8 sets
        let mut shadowed = Cache::new(1, 2, 64);
        let stride = 8 * 64;
        for addr in [0, stride, 0] {
            plain.access(addr);
            shadowed.access(addr); // set 0 now holds [0, stride], 0 MRU
        }
        let mut shadow = ShadowCache::new(&shadowed);
        // 2*stride evicts `stride` (LRU), keeping 0 — in both copies.
        assert_eq!(plain.access(2 * stride), Access::Miss);
        assert_eq!(shadow.access(&mut shadowed, 2 * stride), Access::Miss);
        assert_eq!(plain.access(0), Access::Hit);
        assert_eq!(shadow.access(&mut shadowed, 0), Access::Hit);
        assert_eq!(plain.access(stride), Access::Miss);
        assert_eq!(shadow.access(&mut shadowed, stride), Access::Miss);
    }

    #[test]
    fn shadow_fast_path_triggers_on_repeats() {
        let mut c = Cache::new(8, 2, 64);
        let mut shadow = ShadowCache::new(&c);
        assert_eq!(shadow.access(&mut c, 0x100), Access::Miss);
        assert_eq!(
            shadow.access(&mut c, 0x104),
            Access::Hit,
            "same block, MRU slot"
        );
        assert_eq!(c.hits(), 1);
    }
}
