//! Set-associative cache model with LRU replacement.

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The block was present.
    Hit,
    /// The block was absent and has been filled.
    Miss,
}

/// A set-associative, write-allocate cache with true-LRU replacement.
///
/// Only hit/miss behavior is modeled (timing lives in the core models).
///
/// # Examples
///
/// ```
/// use rsc_mssp::cache::{Access, Cache};
/// let mut c = Cache::new(1, 1, 64); // 1 KiB direct-mapped, 64 B blocks
/// assert_eq!(c.access(0x0), Access::Miss);
/// assert_eq!(c.access(0x8), Access::Hit); // same block
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<u64>>, // tags, most-recently-used first
    assoc: usize,
    block_shift: u32,
    set_mask: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `kib` KiB with `assoc` ways and `block_bytes`
    /// blocks.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, non-power-of-two
    /// block size, or fewer than one set).
    pub fn new(kib: u32, assoc: u32, block_bytes: u32) -> Self {
        assert!(
            kib > 0 && assoc > 0 && block_bytes > 0,
            "cache geometry must be positive"
        );
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        let blocks = kib as u64 * 1024 / block_bytes as u64;
        let sets = (blocks / assoc as u64).max(1);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: vec![Vec::with_capacity(assoc as usize); sets as usize],
            assoc: assoc as usize,
            block_shift: block_bytes.trailing_zeros(),
            set_mask: sets - 1,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses `addr`, updating LRU state and filling on a miss.
    pub fn access(&mut self, addr: u64) -> Access {
        let block = addr >> self.block_shift;
        let set = (block & self.set_mask) as usize;
        let tag = block >> self.sets.len().trailing_zeros();
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            let t = ways.remove(pos);
            ways.insert(0, t);
            self.hits += 1;
            Access::Hit
        } else {
            if ways.len() >= self.assoc {
                ways.pop();
            }
            ways.insert(0, tag);
            self.misses += 1;
            Access::Miss
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate over all accesses (0 if none).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Number of sets (exposed for tests and diagnostics).
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = Cache::new(64, 2, 64);
        assert_eq!(c.set_count(), 64 * 1024 / 64 / 2);
    }

    #[test]
    fn same_block_hits() {
        let mut c = Cache::new(8, 2, 64);
        assert_eq!(c.access(100), Access::Miss);
        assert_eq!(c.access(101), Access::Hit);
        assert_eq!(c.access(163), Access::Miss, "next block");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Direct construction of a 2-way set: three conflicting blocks.
        let mut c = Cache::new(1, 2, 64); // 8 sets
        let stride = 8 * 64; // same set, different tags
        assert_eq!(c.access(0), Access::Miss);
        assert_eq!(c.access(stride), Access::Miss);
        assert_eq!(c.access(0), Access::Hit); // 0 now MRU
        assert_eq!(c.access(2 * stride), Access::Miss); // evicts `stride`
        assert_eq!(c.access(0), Access::Hit);
        assert_eq!(c.access(stride), Access::Miss, "was evicted");
    }

    #[test]
    fn small_cache_thrashes_large_working_set() {
        let mut small = Cache::new(8, 8, 64);
        let mut large = Cache::new(1024, 8, 64);
        // 256 KiB working set, streamed twice.
        for pass in 0..2 {
            for i in 0..4096u64 {
                let addr = i * 64;
                let a = small.access(addr);
                let b = large.access(addr);
                if pass == 1 {
                    assert_eq!(a, Access::Miss, "8 KiB cannot hold 256 KiB");
                    let _ = b;
                }
            }
        }
        assert!(small.miss_rate() > large.miss_rate());
    }

    #[test]
    fn miss_rate_zero_when_untouched() {
        let c = Cache::new(8, 2, 64);
        assert_eq!(c.miss_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_block_size() {
        Cache::new(8, 2, 48);
    }
}
