//! The MSSP machine: a master executing distilled tasks on the leading
//! core, verified by trailing cores, with a dynamic optimizer driven by a
//! speculation controller.
//!
//! The model is task-granular, as in the paper: any misspeculation inside a
//! task prevents the whole task from committing; detection happens when the
//! trailing execution finishes checking the task (hundreds of cycles after
//! the fact), and recovery restarts the master from the checkpoint.

use crate::cache::Cache;
use crate::config::MachineConfig;
use crate::distill::{Distiller, SkipAccumulator};
use crate::program::{Instr, MemoryModel, ProgramStream};
use crate::timing::CoreModel;
use rsc_control::{ControllerParams, ReactiveController, SpecDecision, TransitionLogPolicy};
use rsc_trace::{InputId, Population};

/// Parameters of one MSSP simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsspParams {
    /// Hardware configuration.
    pub machine: MachineConfig,
    /// Speculation-control policy for the dynamic optimizer.
    pub controller: ControllerParams,
    /// Branch events per task (tasks span a few hundred instructions).
    pub task_events: u64,
    /// Cycles to restore the master from the trailing checkpoint after a
    /// detected misspeculation (on top of the detection delay).
    pub recovery_cycles: u64,
    /// Fixed per-task master overhead (checkpoint/fork), in cycles.
    pub task_overhead_cycles: u64,
}

impl MsspParams {
    /// Defaults: Table 5 hardware, the scaled reactive controller, tasks of
    /// 64 branch events (~400 instructions), 100-cycle restart.
    pub fn new() -> Self {
        MsspParams {
            machine: MachineConfig::table5(),
            controller: ControllerParams::scaled(),
            task_events: 64,
            recovery_cycles: 100,
            task_overhead_cycles: 4,
        }
    }

    /// Replaces the controller policy.
    pub fn with_controller(mut self, controller: ControllerParams) -> Self {
        self.controller = controller;
        self
    }
}

impl Default for MsspParams {
    fn default() -> Self {
        MsspParams::new()
    }
}

/// Results of one MSSP simulation (plus its matching baseline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsspResult {
    /// Cycles for a plain superscalar run on the leading core.
    pub baseline_cycles: u64,
    /// Cycles for the MSSP execution (last task commit).
    pub mssp_cycles: u64,
    /// Dynamic instructions in the original program.
    pub original_instructions: u64,
    /// Dynamic instructions the master actually executed (distilled).
    pub master_instructions: u64,
    /// Tasks committed.
    pub tasks: u64,
    /// Tasks squashed by misspeculation.
    pub task_misspecs: u64,
    /// Dynamic branch misspeculations observed.
    pub branch_misspecs: u64,
}

impl MsspResult {
    /// Speedup of MSSP over the superscalar baseline (>1 is faster).
    pub fn speedup(&self) -> f64 {
        if self.mssp_cycles == 0 {
            0.0
        } else {
            self.baseline_cycles as f64 / self.mssp_cycles as f64
        }
    }

    /// Fraction of dynamic instructions the distiller removed.
    pub fn distillation_ratio(&self) -> f64 {
        if self.original_instructions == 0 {
            0.0
        } else {
            1.0 - self.master_instructions as f64 / self.original_instructions as f64
        }
    }
}

/// Runs the plain superscalar baseline (the paper's `B` bars): the whole
/// program on the leading core.
pub fn run_baseline(
    population: &Population,
    input: InputId,
    events: u64,
    seed: u64,
    machine: &MachineConfig,
) -> u64 {
    let mem = MemoryModel::for_benchmark(population.name());
    let mut core = CoreModel::new(machine.leading, machine);
    let mut l2 = Cache::new(machine.l2_kib, machine.l2_assoc, machine.block_bytes);
    for instr in ProgramStream::new(population, input, events, seed, mem) {
        core.step(&instr, &mut l2);
    }
    core.cycles()
}

/// Runs the MSSP machine with the given speculation-control policy and
/// returns cycles for both MSSP and the baseline.
///
/// # Panics
///
/// Panics if the controller parameters are invalid or `task_events` is 0.
pub fn run_mssp(
    population: &Population,
    input: InputId,
    events: u64,
    seed: u64,
    params: &MsspParams,
) -> MsspResult {
    let baseline_cycles = run_baseline(population, input, events, seed, &params.machine);
    let mut r = run_mssp_only(population, input, events, seed, params);
    r.baseline_cycles = baseline_cycles;
    r
}

/// Runs only the MSSP side (no baseline), leaving
/// [`MsspResult::baseline_cycles`] at zero. Use this with a separately
/// computed [`run_baseline`] when sweeping several policies over the same
/// workload.
///
/// # Panics
///
/// Panics if the controller parameters are invalid or `task_events` is 0.
pub fn run_mssp_only(
    population: &Population,
    input: InputId,
    events: u64,
    seed: u64,
    params: &MsspParams,
) -> MsspResult {
    assert!(
        params.task_events > 0,
        "tasks must contain at least one event"
    );
    let machine = &params.machine;
    let mem = MemoryModel::for_benchmark(population.name());

    let baseline_cycles = 0u64;

    let mut controller = ReactiveController::builder(params.controller)
        .log_policy(TransitionLogPolicy::CountsOnly)
        .build()
        .expect("controller parameters must be valid");
    let distiller = Distiller::new(population.static_branches(), seed);

    let mut master = CoreModel::new(machine.leading, machine);
    let mut master_l2 = Cache::new(machine.l2_kib, machine.l2_assoc, machine.block_bytes);
    // One trailing model stands in for the checking work; its cycle deltas
    // price each task's verification.
    let mut trail = CoreModel::new(machine.trailing, machine);
    let mut trail_l2 = Cache::new(machine.l2_kib, machine.l2_assoc, machine.block_bytes);

    let mut slave_free = vec![0u64; machine.trailing_count as usize];
    let mut master_time = 0u64;
    let mut last_commit = 0u64;

    let mut tasks = 0u64;
    let mut task_misspecs = 0u64;
    let mut branch_misspecs = 0u64;
    let mut original_instructions = 0u64;

    let mut stream = ProgramStream::new(population, input, events, seed, mem).peekable();

    let mut skip = SkipAccumulator::new();

    while stream.peek().is_some() {
        // ---- master executes one distilled task ----
        let master_cycles_before = master.cycles();
        let trail_cycles_before = trail.cycles();
        let mut task_branches = 0u64;
        let mut task_failed = false;
        let mut task_orig_instr = 0u64;
        let mut elim_frac = 0.0f64;

        while task_branches < params.task_events {
            let Some(instr) = stream.next() else { break };
            task_orig_instr += 1;
            original_instructions += 1;
            // The trailing execution always checks the original program.
            trail.step(&instr, &mut trail_l2);

            match instr {
                Instr::CondBranch { record, .. } => {
                    task_branches += 1;
                    match controller.observe(&record) {
                        SpecDecision::Correct => {
                            // Branch (and, downstream, part of its feeding
                            // computation) vanishes from the master.
                            elim_frac = distiller.elim_frac(record.branch);
                        }
                        SpecDecision::Incorrect => {
                            branch_misspecs += 1;
                            task_failed = true;
                            elim_frac = 0.0;
                            master.step(&instr, &mut master_l2);
                        }
                        SpecDecision::NotSpeculated => {
                            elim_frac = 0.0;
                            master.step(&instr, &mut master_l2);
                        }
                    }
                }
                other => {
                    // Dead-code elimination from the most recent correct
                    // speculation thins the surrounding block.
                    if elim_frac > 0.0 && skip.skip(elim_frac) {
                        continue;
                    }
                    master.step(&other, &mut master_l2);
                }
            }
        }
        if task_orig_instr == 0 {
            break;
        }
        tasks += 1;
        master_time += master.cycles() - master_cycles_before + params.task_overhead_cycles;

        // ---- a trailing core verifies the task ----
        let verify_cycles = trail.cycles() - trail_cycles_before;
        let slave = slave_free
            .iter()
            .enumerate()
            .min_by_key(|(_, &free)| free)
            .map(|(i, _)| i)
            .expect("at least one trailing core");
        let start = master_time.max(slave_free[slave]) + u64::from(machine.coherence_hop);
        let done = start + verify_cycles;
        slave_free[slave] = done;

        if task_failed {
            task_misspecs += 1;
            // Detection happens when the checker reaches the bad value;
            // the master then restarts from the trailing state and redoes
            // the task without the offending optimization.
            let master_cpi = master_time as f64 / master.stats().instructions.max(1) as f64;
            let reexec = (task_orig_instr as f64 * master_cpi.max(0.25)) as u64;
            master_time = done + params.recovery_cycles + reexec;
            last_commit = master_time;
        } else {
            last_commit = last_commit.max(done);
        }
    }

    MsspResult {
        baseline_cycles,
        mssp_cycles: master_time.max(last_commit),
        original_instructions,
        master_instructions: master.stats().instructions,
        tasks,
        task_misspecs,
        branch_misspecs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_trace::spec2000;

    fn run(name: &str, events: u64, params: &MsspParams) -> MsspResult {
        let pop = spec2000::benchmark(name).unwrap().population(events);
        run_mssp(&pop, InputId::Eval, events, 11, params)
    }

    #[test]
    fn mssp_beats_baseline_on_biased_benchmark() {
        // vortex: ~80% of dynamic branches on stable highly-biased
        // branches; distillation should win clearly once branches have had
        // enough executions to classify.
        let r = run("vortex", 2_000_000, &MsspParams::new());
        assert!(
            r.speedup() > 1.05,
            "vortex speedup {} (distilled {:.2})",
            r.speedup(),
            r.distillation_ratio()
        );
        assert!(
            r.distillation_ratio() > 0.10,
            "distilled {}",
            r.distillation_ratio()
        );
    }

    #[test]
    fn open_loop_is_slower_than_closed_loop() {
        let closed = MsspParams::new();
        let open = MsspParams::new().with_controller(ControllerParams::scaled().without_eviction());
        // mcf has many behavior-changing branches in our models.
        let rc = run("mcf", 2_000_000, &closed);
        let ro = run("mcf", 2_000_000, &open);
        assert!(
            ro.speedup() < rc.speedup(),
            "open {} vs closed {}",
            ro.speedup(),
            rc.speedup()
        );
        assert!(ro.task_misspecs > rc.task_misspecs);
    }

    #[test]
    fn misspecs_cluster_into_tasks() {
        let r = run("mcf", 300_000, &MsspParams::new());
        assert!(
            r.task_misspecs <= r.branch_misspecs,
            "task misspecs {} cannot exceed branch misspecs {}",
            r.task_misspecs,
            r.branch_misspecs
        );
    }

    #[test]
    fn results_are_deterministic() {
        let a = run("gzip", 200_000, &MsspParams::new());
        let b = run("gzip", 200_000, &MsspParams::new());
        assert_eq!(a, b);
    }

    #[test]
    fn accounting_is_consistent() {
        let r = run("gzip", 200_000, &MsspParams::new());
        assert!(r.master_instructions <= r.original_instructions);
        assert!(r.tasks > 0);
        assert!(r.mssp_cycles > 0);
        assert!(r.baseline_cycles > 0);
        assert!(r.task_misspecs <= r.tasks);
    }

    #[test]
    fn zero_latency_and_high_latency_are_close() {
        // The paper's Figure 8 claim, smoke-tested at small scale.
        let fast = MsspParams::new().with_controller(ControllerParams::scaled().with_latency(0));
        let slow =
            MsspParams::new().with_controller(ControllerParams::scaled().with_latency(100_000));
        let rf = run("twolf", 400_000, &fast);
        let rs = run("twolf", 400_000, &slow);
        let ratio = rs.speedup() / rf.speedup();
        assert!(
            (0.85..=1.05).contains(&ratio),
            "latency sensitivity too high: {ratio} ({} vs {})",
            rs.speedup(),
            rf.speedup()
        );
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn zero_task_events_panics() {
        let mut p = MsspParams::new();
        p.task_events = 0;
        run("gzip", 1_000, &p);
    }
}
