//! The MSSP machine: a master executing distilled tasks on the leading
//! core, verified by trailing cores, with a dynamic optimizer driven by a
//! speculation controller.
//!
//! The model is task-granular, as in the paper: any misspeculation inside a
//! task prevents the whole task from committing; detection happens when the
//! trailing execution finishes checking the task (hundreds of cycles after
//! the fact), and recovery restarts the master from the checkpoint.

use crate::cache::Cache;
use crate::config::MachineConfig;
use crate::distill::{Distiller, SkipAccumulator};
use crate::program::{Instr, InstrBlock, MemoryModel, OpKind, ProgramStream};
use crate::timing::{CoreModel, StepMemo};
use rsc_control::{ControllerParams, ReactiveController, SpecDecision, TransitionLogPolicy};
use rsc_trace::{InputId, Population};

/// Branch events per block on the chunked baseline path (tasks set the
/// block size on the MSSP paths).
const BASELINE_BLOCK_EVENTS: u64 = 2048;

/// How the simulator executes a run. Every mode produces bit-identical
/// results ([`MsspResult`] and the underlying `TimingStats`); they differ
/// only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One `Instr` at a time: the slow oracle path the others are pinned
    /// against.
    #[default]
    PerEvent,
    /// Whole task blocks through the batched `CoreModel` arms.
    Chunked,
    /// Chunked, plus the next master task is simulated speculatively on
    /// this thread while a second thread runs the trailing check of the
    /// current task; the speculative outcome is promoted at commit.
    Speculative,
}

/// Parameters of one MSSP simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsspParams {
    /// Hardware configuration.
    pub machine: MachineConfig,
    /// Speculation-control policy for the dynamic optimizer.
    pub controller: ControllerParams,
    /// Branch events per task (tasks span a few hundred instructions).
    pub task_events: u64,
    /// Cycles to restore the master from the trailing checkpoint after a
    /// detected misspeculation (on top of the detection delay).
    pub recovery_cycles: u64,
    /// Fixed per-task master overhead (checkpoint/fork), in cycles.
    pub task_overhead_cycles: u64,
}

impl MsspParams {
    /// Defaults: Table 5 hardware, the scaled reactive controller, tasks of
    /// 64 branch events (~400 instructions), 100-cycle restart.
    pub fn new() -> Self {
        MsspParams {
            machine: MachineConfig::table5(),
            controller: ControllerParams::scaled(),
            task_events: 64,
            recovery_cycles: 100,
            task_overhead_cycles: 4,
        }
    }

    /// Replaces the controller policy.
    pub fn with_controller(mut self, controller: ControllerParams) -> Self {
        self.controller = controller;
        self
    }
}

impl Default for MsspParams {
    fn default() -> Self {
        MsspParams::new()
    }
}

/// Results of one MSSP simulation (plus its matching baseline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsspResult {
    /// Cycles for a plain superscalar run on the leading core.
    pub baseline_cycles: u64,
    /// Cycles for the MSSP execution (last task commit).
    pub mssp_cycles: u64,
    /// Dynamic instructions in the original program.
    pub original_instructions: u64,
    /// Dynamic instructions the master actually executed (distilled).
    pub master_instructions: u64,
    /// Tasks committed.
    pub tasks: u64,
    /// Tasks squashed by misspeculation.
    pub task_misspecs: u64,
    /// Dynamic branch misspeculations observed.
    pub branch_misspecs: u64,
}

impl MsspResult {
    /// Speedup of MSSP over the superscalar baseline (>1 is faster).
    pub fn speedup(&self) -> f64 {
        if self.mssp_cycles == 0 {
            0.0
        } else {
            self.baseline_cycles as f64 / self.mssp_cycles as f64
        }
    }

    /// Fraction of dynamic instructions the distiller removed.
    pub fn distillation_ratio(&self) -> f64 {
        if self.original_instructions == 0 {
            0.0
        } else {
            1.0 - self.master_instructions as f64 / self.original_instructions as f64
        }
    }
}

/// Runs the plain superscalar baseline (the paper's `B` bars): the whole
/// program on the leading core.
pub fn run_baseline(
    population: &Population,
    input: InputId,
    events: u64,
    seed: u64,
    machine: &MachineConfig,
) -> u64 {
    let mem = MemoryModel::for_benchmark(population.name());
    let mut core = CoreModel::new(machine.leading, machine);
    let mut l2 = Cache::new(machine.l2_kib, machine.l2_assoc, machine.block_bytes);
    for instr in ProgramStream::new(population, input, events, seed, mem) {
        core.step(&instr, &mut l2);
    }
    core.cycles()
}

/// [`run_baseline`] on the chunked fast path: whole instruction blocks
/// through the batched `CoreModel` arms. Bit-identical cycles.
pub fn run_baseline_chunked(
    population: &Population,
    input: InputId,
    events: u64,
    seed: u64,
    machine: &MachineConfig,
) -> u64 {
    let mem = MemoryModel::for_benchmark(population.name());
    let mut core = CoreModel::new(machine.leading, machine);
    let mut l2 = Cache::new(machine.l2_kib, machine.l2_assoc, machine.block_bytes);
    let mut memo = StepMemo::new(&core, &l2);
    let mut stream = ProgramStream::new(population, input, events, seed, mem);
    let mut block = InstrBlock::default();
    loop {
        stream.fill_block_arms(&mut block, BASELINE_BLOCK_EVENTS);
        if block.is_empty() {
            break;
        }
        core.step_block(&block, &mut l2, &mut memo);
    }
    core.cycles()
}

/// Runs the MSSP machine with the given speculation-control policy and
/// returns cycles for both MSSP and the baseline.
///
/// # Panics
///
/// Panics if the controller parameters are invalid or `task_events` is 0.
pub fn run_mssp(
    population: &Population,
    input: InputId,
    events: u64,
    seed: u64,
    params: &MsspParams,
) -> MsspResult {
    let baseline_cycles = run_baseline(population, input, events, seed, &params.machine);
    let mut r = run_mssp_only(population, input, events, seed, params);
    r.baseline_cycles = baseline_cycles;
    r
}

/// What the master side of one task produced, captured so commit-time
/// bookkeeping can run after (and, in speculative mode, concurrently
/// with) the task's execution.
struct TaskOutcome {
    /// Dynamic instructions in the original (undistilled) task.
    orig_instr: u64,
    /// Whether any branch in the task misspeculated.
    failed: bool,
    /// Branch misspeculations inside the task.
    branch_misspecs: u64,
    /// Master cycles spent on this task.
    master_cycles_delta: u64,
    /// Master's cumulative instruction count when the task finished
    /// (snapshotted because the master may run ahead of bookkeeping).
    master_instr_after: u64,
}

/// Commit-order bookkeeping shared by every execution mode: master/slave
/// clocks, task counters, and the recovery arithmetic. One source of
/// truth keeps the modes bit-identical by construction.
struct Bookkeeper {
    slave_free: Vec<u64>,
    coherence_hop: u64,
    recovery_cycles: u64,
    task_overhead_cycles: u64,
    master_time: u64,
    last_commit: u64,
    tasks: u64,
    task_misspecs: u64,
    branch_misspecs: u64,
    original_instructions: u64,
}

impl Bookkeeper {
    fn new(machine: &MachineConfig, params: &MsspParams) -> Self {
        Bookkeeper {
            slave_free: vec![0u64; machine.trailing_count as usize],
            coherence_hop: u64::from(machine.coherence_hop),
            recovery_cycles: params.recovery_cycles,
            task_overhead_cycles: params.task_overhead_cycles,
            master_time: 0,
            last_commit: 0,
            tasks: 0,
            task_misspecs: 0,
            branch_misspecs: 0,
            original_instructions: 0,
        }
    }

    /// Commits one task: advances the master clock, schedules the
    /// verification on the least-loaded trailing core, and applies the
    /// detection/recovery arithmetic on a squash.
    fn commit(&mut self, outcome: &TaskOutcome, verify_cycles: u64) {
        self.tasks += 1;
        self.branch_misspecs += outcome.branch_misspecs;
        self.original_instructions += outcome.orig_instr;
        self.master_time += outcome.master_cycles_delta + self.task_overhead_cycles;

        let slave = self
            .slave_free
            .iter()
            .enumerate()
            .min_by_key(|(_, &free)| free)
            .map(|(i, _)| i)
            .expect("at least one trailing core");
        let start = self.master_time.max(self.slave_free[slave]) + self.coherence_hop;
        let done = start + verify_cycles;
        self.slave_free[slave] = done;

        if outcome.failed {
            self.task_misspecs += 1;
            // Detection happens when the checker reaches the bad value;
            // the master then restarts from the trailing state and redoes
            // the task without the offending optimization.
            let master_cpi = self.master_time as f64 / outcome.master_instr_after.max(1) as f64;
            let reexec = (outcome.orig_instr as f64 * master_cpi.max(0.25)) as u64;
            self.master_time = done + self.recovery_cycles + reexec;
            self.last_commit = self.master_time;
        } else {
            self.last_commit = self.last_commit.max(done);
        }
    }

    fn result(&self, master_instructions: u64) -> MsspResult {
        MsspResult {
            baseline_cycles: 0,
            mssp_cycles: self.master_time.max(self.last_commit),
            original_instructions: self.original_instructions,
            master_instructions,
            tasks: self.tasks,
            task_misspecs: self.task_misspecs,
            branch_misspecs: self.branch_misspecs,
        }
    }
}

/// Executes one distilled task (one block) on the master: controller
/// observations, distillation skips, and selective stepping of the
/// surviving ops. Identical decision and draw order to the per-event
/// loop: the ALU gap before each op is skip-tested instruction by
/// instruction (the accumulator is f64 state, so closed forms would
/// round differently), but when no elimination is active the gap retires
/// in closed form — the common case, since `elim_frac` starts at zero
/// every task.
fn master_task(
    master: &mut CoreModel,
    master_l2: &mut Cache,
    memo: &mut StepMemo,
    controller: &mut ReactiveController,
    distiller: &Distiller,
    skip: &mut SkipAccumulator,
    block: &InstrBlock,
) -> TaskOutcome {
    let cycles_before = master.cycles();
    let mut elim_frac = 0.0f64;
    let mut failed = false;
    let mut misspecs = 0u64;
    for op in block.ops() {
        let gap = u64::from(op.gap);
        if gap > 0 {
            if elim_frac > 0.0 {
                let mut kept = 0u64;
                for _ in 0..gap {
                    if !skip.skip(elim_frac) {
                        kept += 1;
                    }
                }
                master.retire_alus(kept);
            } else {
                master.retire_alus(gap);
            }
        }
        if op.kind == OpKind::Branch {
            let record = op.record();
            match controller.observe(&record) {
                SpecDecision::Correct => {
                    // Branch (and, downstream, part of its feeding
                    // computation) vanishes from the master.
                    elim_frac = distiller.elim_frac(record.branch);
                }
                SpecDecision::Incorrect => {
                    misspecs += 1;
                    failed = true;
                    elim_frac = 0.0;
                    master.exec_op(op, master_l2, memo);
                }
                SpecDecision::NotSpeculated => {
                    elim_frac = 0.0;
                    master.exec_op(op, master_l2, memo);
                }
            }
        } else if elim_frac > 0.0 && skip.skip(elim_frac) {
            // Dead-code elimination from the most recent correct
            // speculation thins the surrounding block.
        } else {
            master.exec_op(op, master_l2, memo);
        }
    }
    TaskOutcome {
        orig_instr: block.instructions(),
        failed,
        branch_misspecs: misspecs,
        master_cycles_delta: master.cycles() - cycles_before,
        master_instr_after: master.stats().instructions,
    }
}

/// Runs only the MSSP side (no baseline), leaving
/// [`MsspResult::baseline_cycles`] at zero. Use this with a separately
/// computed [`run_baseline`] when sweeping several policies over the same
/// workload.
///
/// # Panics
///
/// Panics if the controller parameters are invalid or `task_events` is 0.
pub fn run_mssp_only(
    population: &Population,
    input: InputId,
    events: u64,
    seed: u64,
    params: &MsspParams,
) -> MsspResult {
    assert!(
        params.task_events > 0,
        "tasks must contain at least one event"
    );
    let machine = &params.machine;
    let mem = MemoryModel::for_benchmark(population.name());

    let mut controller = ReactiveController::builder(params.controller)
        .log_policy(TransitionLogPolicy::CountsOnly)
        .build()
        .expect("controller parameters must be valid");
    let distiller = Distiller::new(population.static_branches(), seed);

    let mut master = CoreModel::new(machine.leading, machine);
    let mut master_l2 = Cache::new(machine.l2_kib, machine.l2_assoc, machine.block_bytes);
    // One trailing model stands in for the checking work; its cycle deltas
    // price each task's verification.
    let mut trail = CoreModel::new(machine.trailing, machine);
    let mut trail_l2 = Cache::new(machine.l2_kib, machine.l2_assoc, machine.block_bytes);

    let mut book = Bookkeeper::new(machine, params);

    let mut stream = ProgramStream::new(population, input, events, seed, mem).peekable();

    let mut skip = SkipAccumulator::new();

    while stream.peek().is_some() {
        // ---- master executes one distilled task ----
        let master_cycles_before = master.cycles();
        let trail_cycles_before = trail.cycles();
        let mut task_branches = 0u64;
        let mut task_failed = false;
        let mut task_orig_instr = 0u64;
        let mut task_branch_misspecs = 0u64;
        let mut elim_frac = 0.0f64;

        while task_branches < params.task_events {
            let Some(instr) = stream.next() else { break };
            task_orig_instr += 1;
            // The trailing execution always checks the original program.
            trail.step(&instr, &mut trail_l2);

            match instr {
                Instr::CondBranch { record, .. } => {
                    task_branches += 1;
                    match controller.observe(&record) {
                        SpecDecision::Correct => {
                            // Branch (and, downstream, part of its feeding
                            // computation) vanishes from the master.
                            elim_frac = distiller.elim_frac(record.branch);
                        }
                        SpecDecision::Incorrect => {
                            task_branch_misspecs += 1;
                            task_failed = true;
                            elim_frac = 0.0;
                            master.step(&instr, &mut master_l2);
                        }
                        SpecDecision::NotSpeculated => {
                            elim_frac = 0.0;
                            master.step(&instr, &mut master_l2);
                        }
                    }
                }
                other => {
                    // Dead-code elimination from the most recent correct
                    // speculation thins the surrounding block.
                    if elim_frac > 0.0 && skip.skip(elim_frac) {
                        continue;
                    }
                    master.step(&other, &mut master_l2);
                }
            }
        }
        if task_orig_instr == 0 {
            break;
        }
        let outcome = TaskOutcome {
            orig_instr: task_orig_instr,
            failed: task_failed,
            branch_misspecs: task_branch_misspecs,
            master_cycles_delta: master.cycles() - master_cycles_before,
            master_instr_after: master.stats().instructions,
        };
        // ---- a trailing core verifies the task ----
        book.commit(&outcome, trail.cycles() - trail_cycles_before);
    }

    book.result(master.stats().instructions)
}

/// [`run_mssp_only`] on the chunked fast path: each task is generated as
/// one [`InstrBlock`], the trailing check consumes it through the batched
/// arms, and the master selectively steps the surviving ops.
/// Bit-identical results.
///
/// # Panics
///
/// Panics if the controller parameters are invalid or `task_events` is 0.
pub fn run_mssp_only_chunked(
    population: &Population,
    input: InputId,
    events: u64,
    seed: u64,
    params: &MsspParams,
) -> MsspResult {
    assert!(
        params.task_events > 0,
        "tasks must contain at least one event"
    );
    let machine = &params.machine;
    let mem = MemoryModel::for_benchmark(population.name());

    let mut controller = ReactiveController::builder(params.controller)
        .log_policy(TransitionLogPolicy::CountsOnly)
        .build()
        .expect("controller parameters must be valid");
    let distiller = Distiller::new(population.static_branches(), seed);

    let mut master = CoreModel::new(machine.leading, machine);
    let mut master_l2 = Cache::new(machine.l2_kib, machine.l2_assoc, machine.block_bytes);
    let mut master_memo = StepMemo::new(&master, &master_l2);
    let mut trail = CoreModel::new(machine.trailing, machine);
    let mut trail_l2 = Cache::new(machine.l2_kib, machine.l2_assoc, machine.block_bytes);
    let mut trail_memo = StepMemo::new(&trail, &trail_l2);

    let mut book = Bookkeeper::new(machine, params);
    let mut stream = ProgramStream::new(population, input, events, seed, mem);
    let mut skip = SkipAccumulator::new();
    let mut block = InstrBlock::default();

    loop {
        stream.fill_block(&mut block, params.task_events);
        if block.is_empty() {
            break;
        }
        let trail_before = trail.cycles();
        trail.step_block(&block, &mut trail_l2, &mut trail_memo);
        let verify_cycles = trail.cycles() - trail_before;
        let outcome = master_task(
            &mut master,
            &mut master_l2,
            &mut master_memo,
            &mut controller,
            &distiller,
            &mut skip,
            &block,
        );
        book.commit(&outcome, verify_cycles);
    }

    book.result(master.stats().instructions)
}

/// [`run_mssp_only_chunked`] with speculative master execution: while a
/// second thread runs the trailing check of task *i*, this thread
/// optimistically generates and simulates master task *i+1*; the
/// speculative [`TaskOutcome`] is promoted when task *i* commits. On a
/// squash the simulated machine does not roll back — in this
/// deterministic model the master's architectural state is
/// squash-invariant (recovery is priced by the commit-time re-execution
/// arithmetic, not re-simulated), so the "discard" is exactly that
/// repricing and the speculative outcome of task *i+1* stays valid.
/// Blocks are double-buffered through the channel pair and reused.
/// Bit-identical results to both other modes.
///
/// # Panics
///
/// Panics if the controller parameters are invalid or `task_events` is 0.
pub fn run_mssp_only_speculative(
    population: &Population,
    input: InputId,
    events: u64,
    seed: u64,
    params: &MsspParams,
) -> MsspResult {
    assert!(
        params.task_events > 0,
        "tasks must contain at least one event"
    );
    let machine = &params.machine;
    let mem = MemoryModel::for_benchmark(population.name());

    let mut controller = ReactiveController::builder(params.controller)
        .log_policy(TransitionLogPolicy::CountsOnly)
        .build()
        .expect("controller parameters must be valid");
    let distiller = Distiller::new(population.static_branches(), seed);

    let mut master = CoreModel::new(machine.leading, machine);
    let mut master_l2 = Cache::new(machine.l2_kib, machine.l2_assoc, machine.block_bytes);
    let mut master_memo = StepMemo::new(&master, &master_l2);
    let trail_core = CoreModel::new(machine.trailing, machine);
    let trail_l2 = Cache::new(machine.l2_kib, machine.l2_assoc, machine.block_bytes);

    let mut book = Bookkeeper::new(machine, params);
    let mut stream = ProgramStream::new(population, input, events, seed, mem);
    let mut skip = SkipAccumulator::new();

    let (to_trail, trail_rx) = std::sync::mpsc::channel::<InstrBlock>();
    let (to_main, main_rx) = std::sync::mpsc::channel::<(InstrBlock, u64)>();

    let master_instructions = std::thread::scope(|s| {
        s.spawn(move || {
            // The checker thread owns the trailing core; each received
            // block comes back with its verify-cycle price.
            let mut trail = trail_core;
            let mut trail_l2 = trail_l2;
            let mut trail_memo = StepMemo::new(&trail, &trail_l2);
            while let Ok(block) = trail_rx.recv() {
                let before = trail.cycles();
                trail.step_block(&block, &mut trail_l2, &mut trail_memo);
                if to_main.send((block, trail.cycles() - before)).is_err() {
                    break;
                }
            }
        });

        let mut cur = InstrBlock::default();
        let mut spare = InstrBlock::default();
        if stream.fill_block(&mut cur, params.task_events) == 0 {
            drop(to_trail);
            return master.stats().instructions;
        }
        let mut pending = master_task(
            &mut master,
            &mut master_l2,
            &mut master_memo,
            &mut controller,
            &distiller,
            &mut skip,
            &cur,
        );
        to_trail.send(cur).expect("checker thread alive");

        loop {
            // Speculate: simulate the next master task while the checker
            // verifies the current one.
            let next = if stream.fill_block(&mut spare, params.task_events) > 0 {
                Some(master_task(
                    &mut master,
                    &mut master_l2,
                    &mut master_memo,
                    &mut controller,
                    &distiller,
                    &mut skip,
                    &spare,
                ))
            } else {
                None
            };
            // Join with the current task's verification; promote the
            // pending outcome (or, on a squash, price the recovery).
            let (done_block, verify_cycles) = main_rx.recv().expect("checker thread alive");
            book.commit(&pending, verify_cycles);
            match next {
                Some(outcome) => {
                    pending = outcome;
                    let filled = std::mem::replace(&mut spare, done_block);
                    to_trail.send(filled).expect("checker thread alive");
                }
                None => break,
            }
        }
        drop(to_trail);
        master.stats().instructions
    });

    book.result(master_instructions)
}

/// Dispatches [`run_mssp_only`] / [`run_mssp_only_chunked`] /
/// [`run_mssp_only_speculative`] by `mode`.
///
/// # Panics
///
/// Panics if the controller parameters are invalid or `task_events` is 0.
pub fn run_mssp_only_mode(
    population: &Population,
    input: InputId,
    events: u64,
    seed: u64,
    params: &MsspParams,
    mode: ExecMode,
) -> MsspResult {
    match mode {
        ExecMode::PerEvent => run_mssp_only(population, input, events, seed, params),
        ExecMode::Chunked => run_mssp_only_chunked(population, input, events, seed, params),
        ExecMode::Speculative => run_mssp_only_speculative(population, input, events, seed, params),
    }
}

/// [`run_mssp`] with a mode-matched baseline: the per-event mode pairs
/// with [`run_baseline`], the fast modes with [`run_baseline_chunked`]
/// (the two baselines are themselves bit-identical).
///
/// # Panics
///
/// Panics if the controller parameters are invalid or `task_events` is 0.
pub fn run_mssp_mode(
    population: &Population,
    input: InputId,
    events: u64,
    seed: u64,
    params: &MsspParams,
    mode: ExecMode,
) -> MsspResult {
    let baseline_cycles = match mode {
        ExecMode::PerEvent => run_baseline(population, input, events, seed, &params.machine),
        _ => run_baseline_chunked(population, input, events, seed, &params.machine),
    };
    let mut r = run_mssp_only_mode(population, input, events, seed, params, mode);
    r.baseline_cycles = baseline_cycles;
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_trace::spec2000;

    fn run(name: &str, events: u64, params: &MsspParams) -> MsspResult {
        let pop = spec2000::benchmark(name).unwrap().population(events);
        run_mssp(&pop, InputId::Eval, events, 11, params)
    }

    #[test]
    fn mssp_beats_baseline_on_biased_benchmark() {
        // vortex: ~80% of dynamic branches on stable highly-biased
        // branches; distillation should win clearly once branches have had
        // enough executions to classify.
        let r = run("vortex", 2_000_000, &MsspParams::new());
        assert!(
            r.speedup() > 1.05,
            "vortex speedup {} (distilled {:.2})",
            r.speedup(),
            r.distillation_ratio()
        );
        assert!(
            r.distillation_ratio() > 0.10,
            "distilled {}",
            r.distillation_ratio()
        );
    }

    #[test]
    fn open_loop_is_slower_than_closed_loop() {
        let closed = MsspParams::new();
        let open = MsspParams::new().with_controller(ControllerParams::scaled().without_eviction());
        // mcf has many behavior-changing branches in our models.
        let rc = run("mcf", 2_000_000, &closed);
        let ro = run("mcf", 2_000_000, &open);
        assert!(
            ro.speedup() < rc.speedup(),
            "open {} vs closed {}",
            ro.speedup(),
            rc.speedup()
        );
        assert!(ro.task_misspecs > rc.task_misspecs);
    }

    #[test]
    fn misspecs_cluster_into_tasks() {
        let r = run("mcf", 300_000, &MsspParams::new());
        assert!(
            r.task_misspecs <= r.branch_misspecs,
            "task misspecs {} cannot exceed branch misspecs {}",
            r.task_misspecs,
            r.branch_misspecs
        );
    }

    #[test]
    fn results_are_deterministic() {
        let a = run("gzip", 200_000, &MsspParams::new());
        let b = run("gzip", 200_000, &MsspParams::new());
        assert_eq!(a, b);
    }

    #[test]
    fn accounting_is_consistent() {
        let r = run("gzip", 200_000, &MsspParams::new());
        assert!(r.master_instructions <= r.original_instructions);
        assert!(r.tasks > 0);
        assert!(r.mssp_cycles > 0);
        assert!(r.baseline_cycles > 0);
        assert!(r.task_misspecs <= r.tasks);
    }

    #[test]
    fn zero_latency_and_high_latency_are_close() {
        // The paper's Figure 8 claim, smoke-tested at small scale.
        let fast = MsspParams::new().with_controller(ControllerParams::scaled().with_latency(0));
        let slow =
            MsspParams::new().with_controller(ControllerParams::scaled().with_latency(100_000));
        let rf = run("twolf", 400_000, &fast);
        let rs = run("twolf", 400_000, &slow);
        let ratio = rs.speedup() / rf.speedup();
        assert!(
            (0.85..=1.05).contains(&ratio),
            "latency sensitivity too high: {ratio} ({} vs {})",
            rs.speedup(),
            rf.speedup()
        );
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn zero_task_events_panics() {
        let mut p = MsspParams::new();
        p.task_events = 0;
        run("gzip", 1_000, &p);
    }

    #[test]
    fn chunked_baseline_is_bit_identical() {
        for name in ["gzip", "mcf"] {
            let pop = spec2000::benchmark(name).unwrap().population(100_000);
            let m = MachineConfig::table5();
            let a = run_baseline(&pop, InputId::Eval, 100_000, 11, &m);
            let b = run_baseline_chunked(&pop, InputId::Eval, 100_000, 11, &m);
            assert_eq!(a, b, "{name}");
        }
    }

    #[test]
    fn all_exec_modes_are_bit_identical() {
        let pop = spec2000::benchmark("gcc").unwrap().population(100_000);
        let p = MsspParams::new();
        let per_event = run_mssp_only(&pop, InputId::Eval, 100_000, 11, &p);
        let chunked = run_mssp_only_chunked(&pop, InputId::Eval, 100_000, 11, &p);
        let speculative = run_mssp_only_speculative(&pop, InputId::Eval, 100_000, 11, &p);
        assert_eq!(per_event, chunked);
        assert_eq!(per_event, speculative);
    }

    #[test]
    fn single_event_tasks_are_bit_identical() {
        // task_events=1 makes every task a single branch event, so any
        // squash is a squash on the task's final event.
        let pop = spec2000::benchmark("mcf").unwrap().population(300_000);
        let mut p = MsspParams::new();
        p.task_events = 1;
        let per_event = run_mssp_only(&pop, InputId::Eval, 300_000, 11, &p);
        let chunked = run_mssp_only_chunked(&pop, InputId::Eval, 300_000, 11, &p);
        let speculative = run_mssp_only_speculative(&pop, InputId::Eval, 300_000, 11, &p);
        assert!(
            per_event.task_misspecs > 0,
            "scenario must exercise squashes"
        );
        assert_eq!(per_event, chunked);
        assert_eq!(per_event, speculative);
    }

    #[test]
    fn mode_dispatch_matches_direct_calls() {
        let pop = spec2000::benchmark("gzip").unwrap().population(30_000);
        let p = MsspParams::new();
        let direct = run_mssp(&pop, InputId::Eval, 30_000, 3, &p);
        for mode in [ExecMode::PerEvent, ExecMode::Chunked, ExecMode::Speculative] {
            assert_eq!(
                run_mssp_mode(&pop, InputId::Eval, 30_000, 3, &p, mode),
                direct
            );
        }
    }
}
