//! Branch predictors: gshare, return-address stack, and an indirect-target
//! table (the paper's Table 5 front end).

/// A gshare conditional-branch predictor: a table of 2-bit saturating
/// counters indexed by `pc ^ global_history`.
///
/// # Examples
///
/// ```
/// use rsc_mssp::predictor::Gshare;
/// let mut g = Gshare::new(4096);
/// // Train on an always-taken branch until the history saturates.
/// for _ in 0..32 {
///     let _ = g.predict_and_update(0x40_0000, true);
/// }
/// assert!(g.predict_and_update(0x40_0000, true));
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    counters: Vec<u8>,
    history: u64,
    history_mask: u64,
    index_mask: u64,
}

impl Gshare {
    /// Creates a predictor with `counters` 2-bit entries (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `counters` is not a power of two or is zero.
    pub fn new(counters: u32) -> Self {
        assert!(
            counters.is_power_of_two() && counters > 0,
            "counter count must be a power of two"
        );
        let bits = counters.trailing_zeros() as u64;
        Gshare {
            counters: vec![1; counters as usize], // weakly not-taken
            history: 0,
            history_mask: (1 << bits.min(16)) - 1,
            index_mask: (counters - 1) as u64,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ (self.history & self.history_mask)) & self.index_mask) as usize
    }

    /// Predicts the branch at `pc`, then updates the counter and history
    /// with the actual outcome. Returns whether the prediction was correct.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let predicted_taken = self.counters[idx] >= 2;
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = (self.history << 1) | u64::from(taken);
        predicted_taken == taken
    }

    /// Returns `true` when the predictor is at a *fixed point* for a
    /// repeat of `(pc, taken)`: the masked global history already consists
    /// entirely of `taken`-direction bits, and the counter such a repeat
    /// would index is saturated in the `taken` direction. At a fixed point
    /// another [`Gshare::predict_and_update`] with the same arguments
    /// predicts correctly and changes no state, so the chunked loop's
    /// one-entry memo can skip it outright.
    #[inline]
    pub fn at_fixed_point(&self, pc: u64, taken: bool) -> bool {
        let h = self.history & self.history_mask;
        let history_saturated = if taken {
            h == self.history_mask
        } else {
            h == 0
        };
        history_saturated && {
            let c = self.counters[self.index(pc)];
            if taken {
                c == 3
            } else {
                c == 0
            }
        }
    }
}

/// A return-address stack with a bounded depth.
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    stack: Vec<u64>,
    capacity: usize,
}

impl ReturnAddressStack {
    /// Creates a RAS with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: u32) -> Self {
        assert!(entries > 0, "RAS needs at least one entry");
        ReturnAddressStack {
            stack: Vec::new(),
            capacity: entries as usize,
        }
    }

    /// Records a call's return address; overflow discards the oldest entry.
    pub fn push(&mut self, return_addr: u64) {
        if self.stack.len() >= self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(return_addr);
    }

    /// Predicts a return target; returns whether it matched `actual`.
    pub fn predict_return(&mut self, actual: u64) -> bool {
        match self.stack.pop() {
            Some(top) => top == actual,
            None => false,
        }
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

/// A direct-mapped indirect-target predictor (last-target table).
#[derive(Debug, Clone)]
pub struct IndirectPredictor {
    targets: Vec<u64>,
    mask: u64,
}

impl IndirectPredictor {
    /// Creates a table with `entries` slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or is zero.
    pub fn new(entries: u32) -> Self {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "entry count must be a power of two"
        );
        IndirectPredictor {
            targets: vec![0; entries as usize],
            mask: (entries - 1) as u64,
        }
    }

    /// Predicts the target of the indirect jump at `pc`, updates the table
    /// with the actual target, and returns whether the prediction matched.
    pub fn predict_and_update(&mut self, pc: u64, actual: u64) -> bool {
        let idx = ((pc >> 2) & self.mask) as usize;
        let correct = self.targets[idx] == actual;
        self.targets[idx] = actual;
        correct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_stable_bias() {
        let mut g = Gshare::new(1024);
        let mut correct = 0;
        for i in 0..1000 {
            if g.predict_and_update(0x1000, true) && i >= 10 {
                correct += 1;
            }
        }
        assert!(correct >= 980, "correct: {correct}");
    }

    #[test]
    fn gshare_struggles_on_random_pattern() {
        let mut g = Gshare::new(1024);
        // A pseudo-random but deterministic outcome stream.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut correct = 0;
        let n = 10_000;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if g.predict_and_update(0x2000, x & 1 == 1) {
                correct += 1;
            }
        }
        let rate = correct as f64 / n as f64;
        assert!(rate < 0.65, "accuracy on random stream: {rate}");
    }

    #[test]
    fn gshare_uses_history_to_learn_alternation() {
        let mut g = Gshare::new(4096);
        let mut correct_late = 0;
        for i in 0..2000u32 {
            let taken = i % 2 == 0;
            if g.predict_and_update(0x3000, taken) && i >= 1000 {
                correct_late += 1;
            }
        }
        assert!(correct_late >= 950, "late accuracy: {correct_late}/1000");
    }

    #[test]
    fn fixed_point_means_update_is_a_no_op() {
        let mut g = Gshare::new(1024);
        for _ in 0..40 {
            let _ = g.predict_and_update(0x1000, true);
        }
        assert!(g.at_fixed_point(0x1000, true));
        let snapshot = g.clone();
        assert!(
            g.predict_and_update(0x1000, true),
            "fixed point predicts correctly"
        );
        assert_eq!(g.counters, snapshot.counters);
        assert_eq!(
            g.history & g.history_mask,
            snapshot.history & snapshot.history_mask
        );
        // Opposite direction is not at a fixed point.
        assert!(!g.at_fixed_point(0x1000, false));
    }

    #[test]
    fn fixed_point_requires_saturated_counter() {
        let g = Gshare::new(1024);
        // Fresh predictor: history is all zeros (not-taken-saturated) but
        // counters start weakly not-taken (1), not 0.
        assert!(!g.at_fixed_point(0x1000, false));
    }

    #[test]
    fn ras_matches_nested_calls() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(100);
        ras.push(200);
        assert!(ras.predict_return(200));
        assert!(ras.predict_return(100));
        assert!(!ras.predict_return(100), "empty stack mispredicts");
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // drops 1
        assert!(ras.predict_return(3));
        assert!(ras.predict_return(2));
        assert!(!ras.predict_return(1));
    }

    #[test]
    fn indirect_remembers_last_target() {
        let mut ip = IndirectPredictor::new(16);
        assert!(!ip.predict_and_update(0x100, 0xA));
        assert!(ip.predict_and_update(0x100, 0xA));
        assert!(!ip.predict_and_update(0x100, 0xB), "target changed");
        assert!(ip.predict_and_update(0x100, 0xB));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn gshare_rejects_non_power_of_two() {
        Gshare::new(1000);
    }
}
