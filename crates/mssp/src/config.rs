//! Machine configuration (the paper's Table 5).

/// One core's microarchitectural parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Fetch/issue width (instructions per cycle).
    pub width: u32,
    /// Pipeline depth in stages (branch misprediction penalty).
    pub pipeline_depth: u32,
    /// Instruction window entries (bounds memory-level parallelism).
    pub window: u32,
    /// L1 data cache size in KiB.
    pub l1_kib: u32,
    /// L1 associativity.
    pub l1_assoc: u32,
    /// L1 hit latency in cycles (including address generation).
    pub l1_latency: u32,
}

/// Full asymmetric-CMP configuration.
///
/// Defaults reproduce the paper's Table 5: one large leading core, eight
/// small trailing cores, a shared 1 MiB L2, and a 200-cycle memory.
///
/// # Examples
///
/// ```
/// use rsc_mssp::MachineConfig;
/// let m = MachineConfig::table5();
/// assert_eq!(m.leading.width, 4);
/// assert_eq!(m.trailing_count, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// The leading (master) core.
    pub leading: CoreConfig,
    /// One trailing (checker) core.
    pub trailing: CoreConfig,
    /// Number of trailing cores.
    pub trailing_count: u32,
    /// Shared L2 size in KiB.
    pub l2_kib: u32,
    /// L2 associativity.
    pub l2_assoc: u32,
    /// L2 access latency in cycles (minimum).
    pub l2_latency: u32,
    /// Minimum memory latency after L2 miss, in cycles.
    pub memory_latency: u32,
    /// Minimum coherence hop between processors, in cycles.
    pub coherence_hop: u32,
    /// Cache block size in bytes (both levels).
    pub block_bytes: u32,
    /// gshare predictor size in counters (the paper's 8 Kbit = 4 K 2-bit
    /// counters).
    pub gshare_counters: u32,
    /// Return-address-stack entries.
    pub ras_entries: u32,
    /// Indirect-target predictor entries.
    pub indirect_entries: u32,
}

impl MachineConfig {
    /// The paper's Table 5 parameters.
    pub fn table5() -> Self {
        MachineConfig {
            leading: CoreConfig {
                width: 4,
                pipeline_depth: 12,
                window: 128,
                l1_kib: 64,
                l1_assoc: 2,
                l1_latency: 3,
            },
            trailing: CoreConfig {
                width: 2,
                pipeline_depth: 8,
                window: 24,
                l1_kib: 8,
                l1_assoc: 8,
                l1_latency: 3,
            },
            trailing_count: 8,
            l2_kib: 1024,
            l2_assoc: 8,
            l2_latency: 10,
            memory_latency: 200,
            coherence_hop: 10,
            block_bytes: 64,
            gshare_counters: 4096,
            ras_entries: 32,
            indirect_entries: 256,
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::table5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_matches_paper() {
        let m = MachineConfig::table5();
        assert_eq!(m.leading.width, 4);
        assert_eq!(m.leading.pipeline_depth, 12);
        assert_eq!(m.leading.window, 128);
        assert_eq!(m.leading.l1_kib, 64);
        assert_eq!(m.leading.l1_assoc, 2);
        assert_eq!(m.trailing.width, 2);
        assert_eq!(m.trailing.pipeline_depth, 8);
        assert_eq!(m.trailing.window, 24);
        assert_eq!(m.trailing.l1_kib, 8);
        assert_eq!(m.trailing_count, 8);
        assert_eq!(m.l2_kib, 1024);
        assert_eq!(m.l2_latency, 10);
        assert_eq!(m.memory_latency, 200);
        assert_eq!(m.coherence_hop, 10);
        assert_eq!(m.block_bytes, 64);
        assert_eq!(m.ras_entries, 32);
        assert_eq!(m.indirect_entries, 256);
    }

    #[test]
    fn default_is_table5() {
        assert_eq!(MachineConfig::default(), MachineConfig::table5());
    }
}
