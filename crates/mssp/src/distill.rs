//! The distiller: how much code a correct speculation eliminates.
//!
//! MSSP's approximate program omits both the speculated branch and the
//! computation that only existed to feed it (Figure 1 of the paper:
//! dead loads, address generation, comparison). The paper reports that
//! eliminating checks enables removing as much as two-thirds of the
//! speculative program's dynamic instructions; per-branch elimination
//! fractions here are drawn deterministically from a range whose mean
//! matches a more conservative distillation.

use rsc_trace::rng::Xoshiro256;
use rsc_trace::BranchId;

/// Per-branch dead-code elimination fractions.
#[derive(Debug, Clone)]
pub struct Distiller {
    fracs: Vec<f64>,
}

impl Distiller {
    /// Elimination fraction bounds for one speculated branch's feeding
    /// block.
    pub const ELIM_RANGE: (f64, f64) = (0.25, 0.65);

    /// Creates elimination fractions for `static_branches` branches,
    /// deterministically from `seed`.
    pub fn new(static_branches: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256::seed_from(seed).fork(0xD15_7111); // "distill"
        let fracs = (0..static_branches)
            .map(|_| rng.gen_range_f64(Self::ELIM_RANGE.0, Self::ELIM_RANGE.1))
            .collect();
        Distiller { fracs }
    }

    /// The fraction of the feeding block removed when `branch` is
    /// speculated correctly.
    pub fn elim_frac(&self, branch: BranchId) -> f64 {
        self.fracs
            .get(branch.index())
            .copied()
            .unwrap_or(Self::ELIM_RANGE.0)
    }

    /// Number of branches covered.
    pub fn len(&self) -> usize {
        self.fracs.len()
    }

    /// Returns `true` if no branches are covered.
    pub fn is_empty(&self) -> bool {
        self.fracs.is_empty()
    }
}

/// Fractional skip accumulator: skips `frac` of a stream of unit steps,
/// deterministically and without RNG state.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SkipAccumulator {
    acc: f64,
}

impl SkipAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        SkipAccumulator::default()
    }

    /// Advances by one instruction with elimination fraction `frac`;
    /// returns `true` if this instruction is eliminated.
    pub fn skip(&mut self, frac: f64) -> bool {
        self.acc += frac.clamp(0.0, 1.0);
        if self.acc >= 1.0 {
            self.acc -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fracs_are_within_range_and_deterministic() {
        let a = Distiller::new(100, 7);
        let b = Distiller::new(100, 7);
        for i in 0..100 {
            let f = a.elim_frac(BranchId::new(i));
            assert!((Distiller::ELIM_RANGE.0..Distiller::ELIM_RANGE.1).contains(&f));
            assert_eq!(f, b.elim_frac(BranchId::new(i)));
        }
    }

    #[test]
    fn out_of_range_branch_uses_floor() {
        let d = Distiller::new(2, 7);
        assert_eq!(d.elim_frac(BranchId::new(99)), Distiller::ELIM_RANGE.0);
    }

    #[test]
    fn skip_accumulator_matches_fraction() {
        let mut s = SkipAccumulator::new();
        let skipped = (0..10_000).filter(|_| s.skip(0.4)).count();
        assert_eq!(skipped, 4000);
    }

    #[test]
    fn skip_zero_never_and_one_always() {
        let mut s = SkipAccumulator::new();
        assert!((0..100).filter(|_| s.skip(0.0)).count() == 0);
        let mut s = SkipAccumulator::new();
        assert_eq!((0..100).filter(|_| s.skip(1.0)).count(), 100);
    }
}
