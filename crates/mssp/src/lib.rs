//! # rsc-mssp — Master/Slave Speculative Parallelization substrate
//!
//! A deterministic timing simulation of the asymmetric chip multiprocessor
//! the paper uses to validate its speculation-control model (its Section
//! 4): one large leading core running the *distilled* (approximated,
//! check-free) program, eight small trailing cores verifying tasks, a
//! shared L2, and a dynamic optimizer whose speculation decisions come
//! from an [`rsc_control`] controller.
//!
//! The machine reproduces the paper's two performance results:
//!
//! * removing the controller's eviction arc (open loop) costs double-digit
//!   percent performance and can push MSSP below plain superscalar
//!   execution (Figure 7);
//! * re-optimization latencies of 0 / 100k / 1M cycles are almost
//!   indistinguishable (Figure 8).
//!
//! ```
//! use rsc_mssp::{run_mssp, MsspParams};
//! use rsc_trace::{spec2000, InputId};
//!
//! let pop = spec2000::benchmark("vortex").unwrap().population(100_000);
//! let r = run_mssp(&pop, InputId::Eval, 100_000, 1, &MsspParams::new());
//! assert!(r.tasks > 0);
//! assert!(r.distillation_ratio() > 0.0);
//! ```

pub mod cache;
pub mod config;
pub mod distill;
pub mod machine;
pub mod predictor;
pub mod program;
pub mod timing;

pub use cache::{Cache, ShadowCache};
pub use config::{CoreConfig, MachineConfig};
pub use distill::Distiller;
pub use machine::{
    run_baseline, run_baseline_chunked, run_mssp, run_mssp_mode, run_mssp_only,
    run_mssp_only_chunked, run_mssp_only_mode, run_mssp_only_speculative, ExecMode, MsspParams,
    MsspResult,
};
pub use program::{BlockOp, Instr, InstrBlock, MemoryModel, OpKind, ProgramStream};
pub use timing::{CoreModel, StepMemo, TimingStats};
