//! Mechanistic core timing: a one-pass interval model over the instruction
//! stream, driven by real cache and predictor state.
//!
//! Each instruction contributes `1/width` of a dispatch cycle; discrete
//! penalties are added for branch mispredictions (pipeline depth) and
//! memory misses (L2/memory latency divided by the core's achievable
//! memory-level parallelism, a function of window size). This is the
//! standard first-order mechanistic decomposition of superscalar
//! performance, and it is deterministic and fast enough to simulate
//! hundreds of millions of instructions.

use crate::cache::{Access, Cache, ShadowCache};
use crate::config::{CoreConfig, MachineConfig};
use crate::predictor::{Gshare, IndirectPredictor, ReturnAddressStack};
use crate::program::{BlockOp, Instr, InstrBlock, OpKind};

/// Cycle accounting for one core.
///
/// `branch_penalty` covers every front-end redirect — conditional
/// mispredictions, return-address-stack misses, and indirect-target
/// misses — and each source has its own event counters, so
/// `branch_penalty` always equals `pipeline_depth * (mispredicts +
/// return_mispredicts + indirect_mispredicts)`. (`branches` and
/// `mispredicts` remain conditional-only, as before.)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingStats {
    /// Instructions executed.
    pub instructions: u64,
    /// Penalty cycles from branch mispredictions (all three sources).
    pub branch_penalty: u64,
    /// Penalty cycles from memory misses.
    pub memory_penalty: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Conditional branches mispredicted.
    pub mispredicts: u64,
    /// Returns executed.
    pub returns: u64,
    /// Returns whose target missed in the return-address stack.
    pub return_mispredicts: u64,
    /// Indirect jumps executed.
    pub indirect_jumps: u64,
    /// Indirect jumps whose predicted target was wrong.
    pub indirect_mispredicts: u64,
}

/// A core timing model with private L1 and front-end predictors.
///
/// The shared L2 lives outside the core (pass it to [`CoreModel::step`]).
#[derive(Debug, Clone)]
pub struct CoreModel {
    cfg: CoreConfig,
    l1: Cache,
    gshare: Gshare,
    ras: ReturnAddressStack,
    indirect: IndirectPredictor,
    l2_latency: u32,
    memory_latency: u32,
    mlp: u64,
    /// Fractional memory-penalty remainder in quarter-load units (see
    /// [`CoreModel::charge_memory`]); carried so small penalties are not
    /// truncated to zero.
    mem_acc: u64,
    stats: TimingStats,
}

impl CoreModel {
    /// Creates a core model from the machine config.
    pub fn new(core: CoreConfig, machine: &MachineConfig) -> Self {
        CoreModel {
            cfg: core,
            l1: Cache::new(core.l1_kib, core.l1_assoc, machine.block_bytes),
            gshare: Gshare::new(machine.gshare_counters),
            ras: ReturnAddressStack::new(machine.ras_entries),
            indirect: IndirectPredictor::new(machine.indirect_entries),
            l2_latency: machine.l2_latency,
            memory_latency: machine.memory_latency,
            // Achievable memory-level parallelism grows with the window.
            mlp: u64::from(core.window / 32).max(1),
            mem_acc: 0,
            stats: TimingStats::default(),
        }
    }

    /// Charges a memory-miss penalty expressed in *quarter-load* units
    /// (`raw_latency * 4` for a load, `raw_latency` for a store, so
    /// stores cost a quarter of the load penalty as before). The charge is
    /// divided by `mlp` in fixed point: whole cycles land in
    /// `memory_penalty` immediately and the sub-cycle remainder carries in
    /// `mem_acc`, so small penalties (e.g. an L2-hit store on a wide
    /// window, `10 / 16`) accumulate instead of truncating to zero.
    #[inline]
    fn charge_memory(&mut self, quarter_loads: u64) {
        self.mem_acc += quarter_loads;
        let den = self.mlp * 4;
        self.stats.memory_penalty += self.mem_acc / den;
        self.mem_acc %= den;
    }

    /// Raw (un-divided) latency of a data access that missed L1.
    #[inline]
    fn l2_or_memory_latency(&self, l2_access: Access) -> u64 {
        if l2_access == Access::Miss {
            u64::from(self.l2_latency + self.memory_latency)
        } else {
            u64::from(self.l2_latency)
        }
    }

    /// Executes one instruction against this core's state, charging
    /// penalties. `l2` is the shared second-level cache.
    #[inline]
    pub fn step(&mut self, instr: &Instr, l2: &mut Cache) {
        self.stats.instructions += 1;
        match *instr {
            Instr::Alu { .. } => {}
            Instr::Load { addr, .. } => {
                if self.l1.access(addr) == Access::Miss {
                    let raw = self.l2_or_memory_latency(l2.access(addr));
                    self.charge_memory(raw * 4);
                }
            }
            Instr::Store { addr, .. } => {
                // Stores retire through the store buffer; misses cost a
                // quarter of the load penalty.
                if self.l1.access(addr) == Access::Miss {
                    let raw = self.l2_or_memory_latency(l2.access(addr));
                    self.charge_memory(raw);
                }
            }
            Instr::CondBranch { pc, record } => {
                self.stats.branches += 1;
                if !self.gshare.predict_and_update(pc, record.taken) {
                    self.stats.mispredicts += 1;
                    self.stats.branch_penalty += u64::from(self.cfg.pipeline_depth);
                }
            }
            Instr::Call { return_addr, .. } => {
                self.ras.push(return_addr);
            }
            Instr::Return { target, .. } => {
                self.stats.returns += 1;
                if !self.ras.predict_return(target) {
                    self.stats.return_mispredicts += 1;
                    self.stats.branch_penalty += u64::from(self.cfg.pipeline_depth);
                }
            }
            Instr::IndirectJump { pc, target } => {
                self.stats.indirect_jumps += 1;
                if !self.indirect.predict_and_update(pc, target) {
                    self.stats.indirect_mispredicts += 1;
                    self.stats.branch_penalty += u64::from(self.cfg.pipeline_depth);
                }
            }
        }
    }

    /// Executes a whole instruction block in one call: the chunked fast
    /// path. ALU instructions fold into a single closed-form addition to
    /// the dispatch term (they touch no other state), and the remaining
    /// ops stream through tight per-kind arms with `memo` short-circuiting
    /// repeated cache-set and predictor transitions.
    ///
    /// The arms run kind-segregated rather than in program order: loads
    /// and stores touch only the caches, conditional branches only the
    /// gshare, and calls/returns/indirect jumps only the RAS and indirect
    /// table, so reordering *across* kinds cannot change any outcome as
    /// long as order *within* each kind is preserved (which the arm
    /// vectors guarantee). Memory penalties are likewise summed before a
    /// single fixed-point division: `charge_memory`'s carried remainder
    /// makes the final `(memory_penalty, mem_acc)` a function of the sum
    /// of charges alone.
    ///
    /// Bit-identical to feeding the block's instructions through
    /// [`CoreModel::step`] one at a time, **provided** all of this core's
    /// traffic (and `l2`'s) flows through the same `memo` for the memo's
    /// lifetime.
    pub fn step_block(&mut self, block: &InstrBlock, l2: &mut Cache, memo: &mut StepMemo) {
        use crate::program::{BRANCH_PC_BASE, STORE_BIT};

        self.stats.instructions += block.instructions();

        // Memory arm: hit/miss tallies and quarter-load charges live in
        // locals and flush once per block.
        let (mut l1_hits, mut l1_misses) = (0u64, 0u64);
        let (mut l2_hits, mut l2_misses) = (0u64, 0u64);
        let mut quarter_loads = 0u64;
        let l2_lat = u64::from(self.l2_latency);
        let miss_lat = u64::from(self.l2_latency + self.memory_latency);
        for &entry in block.mem_ops() {
            let addr = entry & !STORE_BIT;
            if memo.l1.access_uncounted(addr) == Access::Hit {
                l1_hits += 1;
                continue;
            }
            l1_misses += 1;
            let raw = match memo.l2.access_uncounted(addr) {
                Access::Hit => {
                    l2_hits += 1;
                    l2_lat
                }
                Access::Miss => {
                    l2_misses += 1;
                    miss_lat
                }
            };
            // Loads charge 4 quarter-loads per latency cycle, stores 1.
            quarter_loads += if entry & STORE_BIT == 0 { raw * 4 } else { raw };
        }
        self.l1.add_counts(l1_hits, l1_misses);
        l2.add_counts(l2_hits, l2_misses);
        self.charge_memory(quarter_loads);

        // Conditional-branch arm: gshare only, with the fixed-point memo.
        let mut mispredicts = 0u64;
        for &entry in block.cond_ops() {
            let pc = BRANCH_PC_BASE + u64::from(entry >> 1) * 64;
            let taken = entry & 1 != 0;
            if memo.gshare_fixed && memo.gshare_pc == pc && memo.gshare_taken == taken {
                // Repeat of a branch at a predictor fixed point:
                // predicts correctly, changes no state — skip it.
                continue;
            }
            if !self.gshare.predict_and_update(pc, taken) {
                mispredicts += 1;
            }
            memo.gshare_pc = pc;
            memo.gshare_taken = taken;
            memo.gshare_fixed = self.gshare.at_fixed_point(pc, taken);
        }
        self.stats.branches += block.branches();
        self.stats.mispredicts += mispredicts;
        self.stats.branch_penalty += mispredicts * u64::from(self.cfg.pipeline_depth);

        // Rare-op arm: calls, returns, and indirect jumps in stream order.
        for op in block.misc_ops() {
            self.block_op(op, l2, memo);
        }
    }

    /// Executes one non-ALU block op *and counts its instruction*: the
    /// selective-stepping primitive for the distilled master, which walks
    /// a block op-by-op and skips eliminated work.
    #[inline]
    pub fn exec_op(&mut self, op: &BlockOp, l2: &mut Cache, memo: &mut StepMemo) {
        self.stats.instructions += 1;
        self.block_op(op, l2, memo);
    }

    /// Retires `n` ALU instructions in closed form (dispatch term only).
    #[inline]
    pub fn retire_alus(&mut self, n: u64) {
        self.stats.instructions += n;
    }

    /// The per-kind batched arms shared by [`CoreModel::step_block`] and
    /// [`CoreModel::exec_op`]. Does *not* count the instruction.
    #[inline]
    fn block_op(&mut self, op: &BlockOp, l2: &mut Cache, memo: &mut StepMemo) {
        match op.kind {
            OpKind::Load => {
                if memo.l1.access(&mut self.l1, op.a) == Access::Miss {
                    let raw = self.l2_or_memory_latency(memo.l2.access(l2, op.a));
                    self.charge_memory(raw * 4);
                }
            }
            OpKind::Store => {
                if memo.l1.access(&mut self.l1, op.a) == Access::Miss {
                    let raw = self.l2_or_memory_latency(memo.l2.access(l2, op.a));
                    self.charge_memory(raw);
                }
            }
            OpKind::Branch => {
                self.stats.branches += 1;
                let pc = op.a;
                if memo.gshare_fixed && memo.gshare_pc == pc && memo.gshare_taken == op.taken {
                    // Repeat of a branch at a predictor fixed point:
                    // predicts correctly, changes no state — skip it.
                } else {
                    if !self.gshare.predict_and_update(pc, op.taken) {
                        self.stats.mispredicts += 1;
                        self.stats.branch_penalty += u64::from(self.cfg.pipeline_depth);
                    }
                    memo.gshare_pc = pc;
                    memo.gshare_taken = op.taken;
                    memo.gshare_fixed = self.gshare.at_fixed_point(pc, op.taken);
                }
            }
            OpKind::Call => {
                self.ras.push(op.a);
            }
            OpKind::Return => {
                self.stats.returns += 1;
                if !self.ras.predict_return(op.a) {
                    self.stats.return_mispredicts += 1;
                    self.stats.branch_penalty += u64::from(self.cfg.pipeline_depth);
                }
            }
            OpKind::IndirectJump => {
                self.stats.indirect_jumps += 1;
                if !self.indirect.predict_and_update(op.a, op.b) {
                    self.stats.indirect_mispredicts += 1;
                    self.stats.branch_penalty += u64::from(self.cfg.pipeline_depth);
                }
            }
        }
    }

    /// Total cycles so far: dispatch-bound cycles plus penalties.
    pub fn cycles(&self) -> u64 {
        self.stats.instructions.div_ceil(u64::from(self.cfg.width))
            + self.stats.branch_penalty
            + self.stats.memory_penalty
    }

    /// Instructions per cycle so far.
    pub fn ipc(&self) -> f64 {
        let c = self.cycles();
        if c == 0 {
            0.0
        } else {
            self.stats.instructions as f64 / c as f64
        }
    }

    /// Raw counters.
    pub fn stats(&self) -> TimingStats {
        self.stats
    }

    /// The core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }
}

/// Per-run memo state for the chunked fast path: flat shadows of the
/// core's L1 and the shared L2, plus a one-entry gshare fixed-point memo
/// for consecutive repeats of the same `(pc, taken)` branch.
///
/// A memo is tied to one `(core, l2)` pair for one run: every access to
/// those state machines must flow through it (see [`ShadowCache`]), which
/// is why the machine loops construct one per core per run and the
/// per-event oracle path never uses one.
#[derive(Debug, Clone)]
pub struct StepMemo {
    l1: ShadowCache,
    l2: ShadowCache,
    gshare_pc: u64,
    gshare_taken: bool,
    gshare_fixed: bool,
}

impl StepMemo {
    /// Creates a memo shadowing `core`'s L1 and the shared `l2`.
    pub fn new(core: &CoreModel, l2: &Cache) -> Self {
        StepMemo {
            l1: ShadowCache::new(&core.l1),
            l2: ShadowCache::new(l2),
            gshare_pc: u64::MAX,
            gshare_taken: false,
            gshare_fixed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_trace::{BranchId, BranchRecord};

    fn machine() -> MachineConfig {
        MachineConfig::table5()
    }

    fn leading() -> (CoreModel, Cache) {
        let m = machine();
        (
            CoreModel::new(m.leading, &m),
            Cache::new(m.l2_kib, m.l2_assoc, m.block_bytes),
        )
    }

    fn branch(pc: u64, taken: bool) -> Instr {
        Instr::CondBranch {
            pc,
            record: BranchRecord {
                branch: BranchId::new(0),
                taken,
                instr: 0,
            },
        }
    }

    #[test]
    fn alu_only_reaches_full_width() {
        let (mut core, mut l2) = leading();
        for _ in 0..4000 {
            core.step(&Instr::Alu { pc: 0 }, &mut l2);
        }
        assert_eq!(core.cycles(), 1000);
        assert!((core.ipc() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn predictable_branches_are_cheap() {
        let (mut core, mut l2) = leading();
        for _ in 0..1000 {
            core.step(&branch(0x100, true), &mut l2);
        }
        let s = core.stats();
        // Warm-up mispredicts only: each new history pattern trains its own
        // counter until the history register saturates at all-taken.
        assert!(s.mispredicts < 30, "mispredicts: {}", s.mispredicts);
    }

    #[test]
    fn random_branches_pay_pipeline_penalty() {
        let (mut core, mut l2) = leading();
        let mut x = 12345u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            core.step(&branch(0x100, x & (1 << 33) != 0), &mut l2);
        }
        let s = core.stats();
        assert!(s.mispredicts > 300);
        assert_eq!(s.branch_penalty, s.mispredicts * 12);
        assert!(core.ipc() < 0.5);
    }

    #[test]
    fn cache_resident_loads_are_free_of_memory_penalty() {
        let (mut core, mut l2) = leading();
        // 8 KiB working set fits the 64 KiB L1 (after cold misses).
        for i in 0..100_000u64 {
            core.step(
                &Instr::Load {
                    pc: 0,
                    addr: (i % 128) * 64,
                },
                &mut l2,
            );
        }
        let s = core.stats();
        // Only the 128 cold misses pay.
        assert!(
            s.memory_penalty < 128 * 210,
            "penalty: {}",
            s.memory_penalty
        );
    }

    #[test]
    fn streaming_loads_pay_memory_penalty() {
        let (mut core, mut l2) = leading();
        for i in 0..50_000u64 {
            core.step(
                &Instr::Load {
                    pc: 0,
                    addr: i * 64,
                },
                &mut l2,
            );
        }
        assert!(core.ipc() < 1.0, "ipc: {}", core.ipc());
        assert!(core.stats().memory_penalty > 50_000);
    }

    #[test]
    fn trailing_core_is_slower_than_leading() {
        let m = machine();
        let mut lead = CoreModel::new(m.leading, &m);
        let mut trail = CoreModel::new(m.trailing, &m);
        let mut l2a = Cache::new(m.l2_kib, m.l2_assoc, m.block_bytes);
        let mut l2b = Cache::new(m.l2_kib, m.l2_assoc, m.block_bytes);
        // A mixed stream: ALU + streaming loads.
        for i in 0..20_000u64 {
            let instr = if i % 4 == 0 {
                Instr::Load {
                    pc: 0,
                    addr: i * 64,
                }
            } else {
                Instr::Alu { pc: 0 }
            };
            lead.step(&instr, &mut l2a);
            trail.step(&instr, &mut l2b);
        }
        assert!(lead.ipc() > trail.ipc());
    }

    #[test]
    fn l2_hit_stores_accumulate_fractional_penalty() {
        // Table 5 leading core: window=128 → mlp=4, l2_latency=10. An
        // L2-hit store is worth 10/16 of a cycle; the old integer
        // division truncated every one of them to zero, making store
        // misses free on the leading core.
        let (mut core, mut l2) = leading();
        // Three blocks in the same L1 set (64 KiB 2-way → 32 KiB stride)
        // but different L2 sets: cycling them keeps every store an L1
        // miss while all three stay L2-resident after the cold round.
        let addrs = [0u64, 32 * 1024, 64 * 1024];
        for i in 0..51u64 {
            let addr = addrs[(i % 3) as usize];
            core.step(&Instr::Store { pc: 0, addr }, &mut l2);
        }
        // 3 cold L2 misses (raw 210) + 48 L2-hit stores (raw 10), in
        // quarter-load units: (3*210 + 48*10) / (4*4) = 1110/16 = 69.
        // The truncating accounting charged only the cold misses: 39.
        assert_eq!(core.stats().memory_penalty, 69);
    }

    #[test]
    fn load_penalty_remainder_carries_across_misses() {
        let (mut core, mut l2) = leading();
        // Two isolated memory-miss loads: raw latency 210, mlp 4 →
        // 52.5 cycles each. Truncating per-load gave 104; the carried
        // remainder makes the pair worth the true 105.
        core.step(&Instr::Load { pc: 0, addr: 0 }, &mut l2);
        core.step(
            &Instr::Load {
                pc: 0,
                addr: 1 << 20,
            },
            &mut l2,
        );
        assert_eq!(core.stats().memory_penalty, 105);
    }

    #[test]
    fn return_and_indirect_mispredicts_are_counted() {
        let (mut core, mut l2) = leading();
        // Returns against an empty RAS always mispredict; a repeated
        // indirect jump mispredicts once (cold table) then hits.
        for _ in 0..5 {
            core.step(
                &Instr::Return {
                    pc: 0,
                    target: 0x1234,
                },
                &mut l2,
            );
        }
        core.step(
            &Instr::IndirectJump {
                pc: 0x100,
                target: 0xA,
            },
            &mut l2,
        );
        core.step(
            &Instr::IndirectJump {
                pc: 0x100,
                target: 0xA,
            },
            &mut l2,
        );
        let s = core.stats();
        assert_eq!(s.returns, 5);
        assert_eq!(s.return_mispredicts, 5);
        assert_eq!(s.indirect_jumps, 2);
        assert_eq!(s.indirect_mispredicts, 1);
        assert_eq!(
            s.branch_penalty,
            12 * (s.mispredicts + s.return_mispredicts + s.indirect_mispredicts)
        );
    }

    #[test]
    fn branch_penalty_is_consistent_with_counted_events_on_real_stream() {
        use crate::program::{MemoryModel, ProgramStream};
        use rsc_trace::{spec2000, InputId};

        let pop = spec2000::benchmark("gcc").unwrap().population(50_000);
        let mem = MemoryModel::for_benchmark("gcc");
        let (mut core, mut l2) = leading();
        for instr in ProgramStream::new(&pop, InputId::Eval, 50_000, 9, mem) {
            core.step(&instr, &mut l2);
        }
        let s = core.stats();
        assert!(s.returns > 0, "stream should contain returns");
        assert!(s.indirect_jumps > 0, "stream should contain indirect jumps");
        assert_eq!(
            s.branch_penalty,
            12 * (s.mispredicts + s.return_mispredicts + s.indirect_mispredicts)
        );
    }

    #[test]
    fn return_prediction_uses_ras() {
        let (mut core, mut l2) = leading();
        for i in 0..100u64 {
            core.step(
                &Instr::Call {
                    pc: i * 8,
                    return_addr: i * 8 + 4,
                },
                &mut l2,
            );
            core.step(
                &Instr::Return {
                    pc: 0x9000,
                    target: i * 8 + 4,
                },
                &mut l2,
            );
        }
        assert_eq!(core.stats().branch_penalty, 0);
    }
}
