//! Mechanistic core timing: a one-pass interval model over the instruction
//! stream, driven by real cache and predictor state.
//!
//! Each instruction contributes `1/width` of a dispatch cycle; discrete
//! penalties are added for branch mispredictions (pipeline depth) and
//! memory misses (L2/memory latency divided by the core's achievable
//! memory-level parallelism, a function of window size). This is the
//! standard first-order mechanistic decomposition of superscalar
//! performance, and it is deterministic and fast enough to simulate
//! hundreds of millions of instructions.

use crate::cache::{Access, Cache};
use crate::config::{CoreConfig, MachineConfig};
use crate::predictor::{Gshare, IndirectPredictor, ReturnAddressStack};
use crate::program::Instr;

/// Cycle accounting for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingStats {
    /// Instructions executed.
    pub instructions: u64,
    /// Penalty cycles from branch mispredictions.
    pub branch_penalty: u64,
    /// Penalty cycles from memory misses.
    pub memory_penalty: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Conditional branches mispredicted.
    pub mispredicts: u64,
}

/// A core timing model with private L1 and front-end predictors.
///
/// The shared L2 lives outside the core (pass it to [`CoreModel::step`]).
#[derive(Debug, Clone)]
pub struct CoreModel {
    cfg: CoreConfig,
    l1: Cache,
    gshare: Gshare,
    ras: ReturnAddressStack,
    indirect: IndirectPredictor,
    l2_latency: u32,
    memory_latency: u32,
    mlp: u64,
    stats: TimingStats,
}

impl CoreModel {
    /// Creates a core model from the machine config.
    pub fn new(core: CoreConfig, machine: &MachineConfig) -> Self {
        CoreModel {
            cfg: core,
            l1: Cache::new(core.l1_kib, core.l1_assoc, machine.block_bytes),
            gshare: Gshare::new(machine.gshare_counters),
            ras: ReturnAddressStack::new(machine.ras_entries),
            indirect: IndirectPredictor::new(machine.indirect_entries),
            l2_latency: machine.l2_latency,
            memory_latency: machine.memory_latency,
            // Achievable memory-level parallelism grows with the window.
            mlp: u64::from(core.window / 32).max(1),
            stats: TimingStats::default(),
        }
    }

    /// Executes one instruction against this core's state, charging
    /// penalties. `l2` is the shared second-level cache.
    #[inline]
    pub fn step(&mut self, instr: &Instr, l2: &mut Cache) {
        self.stats.instructions += 1;
        match *instr {
            Instr::Alu { .. } => {}
            Instr::Load { addr, .. } => {
                if self.l1.access(addr) == Access::Miss {
                    let penalty = if l2.access(addr) == Access::Miss {
                        u64::from(self.l2_latency + self.memory_latency)
                    } else {
                        u64::from(self.l2_latency)
                    };
                    self.stats.memory_penalty += penalty / self.mlp;
                }
            }
            Instr::Store { addr, .. } => {
                // Stores retire through the store buffer; misses cost a
                // fraction of the load penalty.
                if self.l1.access(addr) == Access::Miss {
                    let penalty = if l2.access(addr) == Access::Miss {
                        u64::from(self.l2_latency + self.memory_latency)
                    } else {
                        u64::from(self.l2_latency)
                    };
                    self.stats.memory_penalty += penalty / (self.mlp * 4);
                }
            }
            Instr::CondBranch { pc, record } => {
                self.stats.branches += 1;
                if !self.gshare.predict_and_update(pc, record.taken) {
                    self.stats.mispredicts += 1;
                    self.stats.branch_penalty += u64::from(self.cfg.pipeline_depth);
                }
            }
            Instr::Call { return_addr, .. } => {
                self.ras.push(return_addr);
            }
            Instr::Return { target, .. } => {
                if !self.ras.predict_return(target) {
                    self.stats.branch_penalty += u64::from(self.cfg.pipeline_depth);
                }
            }
            Instr::IndirectJump { pc, target } => {
                if !self.indirect.predict_and_update(pc, target) {
                    self.stats.branch_penalty += u64::from(self.cfg.pipeline_depth);
                }
            }
        }
    }

    /// Total cycles so far: dispatch-bound cycles plus penalties.
    pub fn cycles(&self) -> u64 {
        self.stats.instructions.div_ceil(u64::from(self.cfg.width))
            + self.stats.branch_penalty
            + self.stats.memory_penalty
    }

    /// Instructions per cycle so far.
    pub fn ipc(&self) -> f64 {
        let c = self.cycles();
        if c == 0 {
            0.0
        } else {
            self.stats.instructions as f64 / c as f64
        }
    }

    /// Raw counters.
    pub fn stats(&self) -> TimingStats {
        self.stats
    }

    /// The core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_trace::{BranchId, BranchRecord};

    fn machine() -> MachineConfig {
        MachineConfig::table5()
    }

    fn leading() -> (CoreModel, Cache) {
        let m = machine();
        (
            CoreModel::new(m.leading, &m),
            Cache::new(m.l2_kib, m.l2_assoc, m.block_bytes),
        )
    }

    fn branch(pc: u64, taken: bool) -> Instr {
        Instr::CondBranch {
            pc,
            record: BranchRecord {
                branch: BranchId::new(0),
                taken,
                instr: 0,
            },
        }
    }

    #[test]
    fn alu_only_reaches_full_width() {
        let (mut core, mut l2) = leading();
        for _ in 0..4000 {
            core.step(&Instr::Alu { pc: 0 }, &mut l2);
        }
        assert_eq!(core.cycles(), 1000);
        assert!((core.ipc() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn predictable_branches_are_cheap() {
        let (mut core, mut l2) = leading();
        for _ in 0..1000 {
            core.step(&branch(0x100, true), &mut l2);
        }
        let s = core.stats();
        // Warm-up mispredicts only: each new history pattern trains its own
        // counter until the history register saturates at all-taken.
        assert!(s.mispredicts < 30, "mispredicts: {}", s.mispredicts);
    }

    #[test]
    fn random_branches_pay_pipeline_penalty() {
        let (mut core, mut l2) = leading();
        let mut x = 12345u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            core.step(&branch(0x100, x & (1 << 33) != 0), &mut l2);
        }
        let s = core.stats();
        assert!(s.mispredicts > 300);
        assert_eq!(s.branch_penalty, s.mispredicts * 12);
        assert!(core.ipc() < 0.5);
    }

    #[test]
    fn cache_resident_loads_are_free_of_memory_penalty() {
        let (mut core, mut l2) = leading();
        // 8 KiB working set fits the 64 KiB L1 (after cold misses).
        for i in 0..100_000u64 {
            core.step(
                &Instr::Load {
                    pc: 0,
                    addr: (i % 128) * 64,
                },
                &mut l2,
            );
        }
        let s = core.stats();
        // Only the 128 cold misses pay.
        assert!(
            s.memory_penalty < 128 * 210,
            "penalty: {}",
            s.memory_penalty
        );
    }

    #[test]
    fn streaming_loads_pay_memory_penalty() {
        let (mut core, mut l2) = leading();
        for i in 0..50_000u64 {
            core.step(
                &Instr::Load {
                    pc: 0,
                    addr: i * 64,
                },
                &mut l2,
            );
        }
        assert!(core.ipc() < 1.0, "ipc: {}", core.ipc());
        assert!(core.stats().memory_penalty > 50_000);
    }

    #[test]
    fn trailing_core_is_slower_than_leading() {
        let m = machine();
        let mut lead = CoreModel::new(m.leading, &m);
        let mut trail = CoreModel::new(m.trailing, &m);
        let mut l2a = Cache::new(m.l2_kib, m.l2_assoc, m.block_bytes);
        let mut l2b = Cache::new(m.l2_kib, m.l2_assoc, m.block_bytes);
        // A mixed stream: ALU + streaming loads.
        for i in 0..20_000u64 {
            let instr = if i % 4 == 0 {
                Instr::Load {
                    pc: 0,
                    addr: i * 64,
                }
            } else {
                Instr::Alu { pc: 0 }
            };
            lead.step(&instr, &mut l2a);
            trail.step(&instr, &mut l2b);
        }
        assert!(lead.ipc() > trail.ipc());
    }

    #[test]
    fn return_prediction_uses_ras() {
        let (mut core, mut l2) = leading();
        for i in 0..100u64 {
            core.step(
                &Instr::Call {
                    pc: i * 8,
                    return_addr: i * 8 + 4,
                },
                &mut l2,
            );
            core.step(
                &Instr::Return {
                    pc: 0x9000,
                    target: i * 8 + 4,
                },
                &mut l2,
            );
        }
        assert_eq!(core.stats().branch_penalty, 0);
    }
}
