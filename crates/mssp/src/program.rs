//! Synthetic program model: wraps a branch trace in a full instruction
//! stream (ALU ops, loads/stores with addresses, calls/returns, indirect
//! jumps) so the timing models have caches and predictors to exercise.

use rsc_trace::rng::Xoshiro256;
use rsc_trace::{BranchId, BranchRecord, InputId, Population, Trace};

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Integer/FP computation.
    Alu { pc: u64 },
    /// Memory read.
    Load { pc: u64, addr: u64 },
    /// Memory write.
    Store { pc: u64, addr: u64 },
    /// Conditional branch carrying its trace record.
    CondBranch { pc: u64, record: BranchRecord },
    /// Call (pushes `return_addr`).
    Call { pc: u64, return_addr: u64 },
    /// Return (to `target`).
    Return { pc: u64, target: u64 },
    /// Indirect jump to `target`.
    IndirectJump { pc: u64, target: u64 },
}

impl Instr {
    /// The instruction's PC.
    pub fn pc(&self) -> u64 {
        match *self {
            Instr::Alu { pc }
            | Instr::Load { pc, .. }
            | Instr::Store { pc, .. }
            | Instr::CondBranch { pc, .. }
            | Instr::Call { pc, .. }
            | Instr::Return { pc, .. }
            | Instr::IndirectJump { pc, .. } => pc,
        }
    }

    /// Returns `true` for the conditional-branch variant.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Instr::CondBranch { .. })
    }
}

/// Kind discriminant of a [`BlockOp`] (every non-ALU instruction class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// Conditional branch (trace event).
    Branch,
    /// Call (pushes a return address).
    Call,
    /// Return.
    Return,
    /// Indirect jump.
    IndirectJump,
}

/// One non-ALU instruction in an [`InstrBlock`], in a flat layout the
/// batched timing arms can stream without enum-payload matching.
///
/// `gap` is the number of ALU instructions immediately preceding this op
/// in program order — ALUs touch no cache or predictor state, so a block
/// stores only their count. Payload fields by kind: `Load`/`Store` put
/// the data address in `a`; `Branch` puts the branch PC in `a`, the
/// cumulative trace instruction count in `b`, the static branch in `id`,
/// and the outcome in `taken`; `Call` puts the return address in `a`;
/// `Return` its target in `a`; `IndirectJump` its PC in `a` and target in
/// `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockOp {
    /// Instruction class.
    pub kind: OpKind,
    /// Branch outcome (branches only).
    pub taken: bool,
    /// ALU instructions immediately before this op.
    pub gap: u32,
    /// Static branch index (branches only).
    pub id: u32,
    /// Primary payload (see type docs).
    pub a: u64,
    /// Secondary payload (see type docs).
    pub b: u64,
}

impl BlockOp {
    fn new(kind: OpKind, a: u64, b: u64) -> Self {
        BlockOp {
            kind,
            taken: false,
            gap: 0,
            id: 0,
            a,
            b,
        }
    }

    /// Reconstructs the trace record of a `Branch` op.
    pub fn record(&self) -> BranchRecord {
        debug_assert_eq!(self.kind, OpKind::Branch);
        BranchRecord {
            branch: BranchId::new(self.id),
            taken: self.taken,
            instr: self.b,
        }
    }

    /// Expands this op back into the equivalent [`Instr`] at `pc` (the
    /// stream PC captured before the op was generated).
    fn to_instr(self, pc: u64) -> Instr {
        match self.kind {
            OpKind::Load => Instr::Load { pc, addr: self.a },
            OpKind::Store => Instr::Store { pc, addr: self.a },
            OpKind::Call => Instr::Call {
                pc,
                return_addr: self.a,
            },
            OpKind::Return => Instr::Return { pc, target: self.a },
            OpKind::IndirectJump => Instr::IndirectJump {
                pc: self.a,
                target: self.b,
            },
            OpKind::Branch => Instr::CondBranch {
                pc: self.a,
                record: self.record(),
            },
        }
    }
}

/// Branch-PC base: every synthetic PC (branches, calls, jump targets)
/// lives above this address, and a static branch's PC is
/// `BRANCH_PC_BASE + index * 64`.
pub const BRANCH_PC_BASE: u64 = 0x40_0000;

/// Marks a memory-arm entry as a store (addresses are < 2^48, so payload
/// bits never reach it).
pub const STORE_BIT: u64 = 1 << 63;

/// A batch of instructions in flat form, carried in two views at once:
///
/// * **per-kind arms** — the memory accesses (`mem`, addresses in order
///   with [`STORE_BIT`] tagging stores), the conditional branches
///   (`cond`, `(static_index << 1) | taken`), and the rare
///   call/return/indirect ops (`misc`, in order) — which the batched
///   `CoreModel::step_block` streams through three tight homogeneous
///   loops with no per-op kind dispatch. Kinds touch disjoint state
///   machines (caches vs. gshare vs. RAS/indirect table) and the
///   fixed-point penalty accumulator is order-associative, so splitting
///   program order *across* arms while preserving it *within* each arm
///   is result-identical;
/// * an **interleaved `ops` mirror** in full program order, each op
///   carrying the ALU gap before it, for consumers that must walk the
///   block selectively (the distilled master couples branch decisions to
///   the ops that follow them).
///
/// Produced by [`ProgramStream::fill_block`] (both views) or
/// [`ProgramStream::fill_block_arms`] (arms only); reuse one block
/// across calls to stay allocation-free.
///
/// Blocks always end at a branch (the stream's gap structure guarantees
/// trailing ALUs cannot occur), so `ops.last()` of a non-empty block is
/// its final branch event.
#[derive(Debug, Clone, Default)]
pub struct InstrBlock {
    ops: Vec<BlockOp>,
    mem: Vec<u64>,
    cond: Vec<u32>,
    misc: Vec<BlockOp>,
    instructions: u64,
    branches: u64,
}

impl InstrBlock {
    /// The non-ALU ops in program order (empty after
    /// [`ProgramStream::fill_block_arms`]).
    pub fn ops(&self) -> &[BlockOp] {
        &self.ops
    }

    /// The memory arm: load/store addresses in program order, stores
    /// tagged with [`STORE_BIT`].
    pub fn mem_ops(&self) -> &[u64] {
        &self.mem
    }

    /// The conditional-branch arm: `(static_index << 1) | taken` per
    /// branch event, in program order.
    pub fn cond_ops(&self) -> &[u32] {
        &self.cond
    }

    /// The call/return/indirect arm, in program order.
    pub fn misc_ops(&self) -> &[BlockOp] {
        &self.misc
    }

    /// Total instructions in the block (ALUs included).
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Conditional-branch events in the block.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// `true` when the block holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions == 0
    }

    /// Empties the block, keeping its allocations.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.mem.clear();
        self.cond.clear();
        self.misc.clear();
        self.instructions = 0;
        self.branches = 0;
    }
}

/// Memory-behavior parameters for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Total data working set in KiB.
    pub working_set_kib: u32,
    /// Fraction of accesses hitting the hot (stack-like) region.
    pub hot_fraction: f64,
    /// Hot region size in KiB.
    pub hot_kib: u32,
}

impl MemoryModel {
    /// A per-benchmark memory model. Sizes are chosen so relative cache
    /// behavior matches the benchmarks' reputations (mcf and vortex are
    /// memory-bound; gzip and eon are cache-friendly).
    pub fn for_benchmark(name: &str) -> MemoryModel {
        let (working_set_kib, hot_fraction) = match name {
            "mcf" => (8192, 0.35),
            "vortex" => (2048, 0.50),
            "gcc" => (1024, 0.55),
            "twolf" => (512, 0.60),
            "gap" => (1024, 0.55),
            "parser" => (512, 0.60),
            "perl" => (512, 0.60),
            "bzip2" => (1024, 0.55),
            "crafty" => (256, 0.70),
            "vpr" => (256, 0.65),
            "gzip" => (256, 0.70),
            "eon" => (128, 0.75),
            _ => (512, 0.60),
        };
        MemoryModel {
            working_set_kib,
            hot_fraction,
            hot_kib: 16,
        }
    }
}

/// Instruction-mix fractions (per non-branch slot).
const LOAD_FRAC: f64 = 0.26;
const STORE_FRAC: f64 = 0.12;
const CALL_FRAC: f64 = 0.015;
const INDIRECT_FRAC: f64 = 0.004;

/// The gap-filler generator over unpacked stream state, so callers that
/// hoist `rng`/`pc` into locals (the block filler's hot loop) get fully
/// registerized RNG state. Both [`ProgramStream::filler_op`] and
/// [`ProgramStream::fill_block`] funnel through this one function, which
/// is what keeps the two access styles draw-for-draw identical.
#[inline(always)]
fn gen_op(
    rng: &mut Xoshiro256,
    pc: &mut u64,
    call_stack: &mut Vec<u64>,
    mem: &MemoryModel,
) -> Option<BlockOp> {
    const DATA_BASE: u64 = 0x1000_0000;
    let my_pc = *pc;
    *pc = my_pc + 4;
    let u = rng.next_f64();
    // The ladder tests the ALU case (the most likely, and the only one
    // with no further draws) first; the partition of [0, 1) — and with it
    // every decision — is exactly the load/store/call/indirect cascade.
    if u >= LOAD_FRAC + STORE_FRAC + CALL_FRAC + INDIRECT_FRAC {
        return None;
    }
    if u < LOAD_FRAC + STORE_FRAC {
        // Both the hot and the cold region draw the same way (one
        // `gen_range` after the region flip), so the region choice is a
        // branch-free bound select, not a code-path fork.
        let bound = if rng.gen_bool(mem.hot_fraction) {
            mem.hot_kib as u64 * 1024
        } else {
            mem.working_set_kib as u64 * 1024
        };
        let addr = DATA_BASE + rng.gen_range(bound);
        let kind = if u < LOAD_FRAC {
            OpKind::Load
        } else {
            OpKind::Store
        };
        Some(BlockOp::new(kind, addr, 0))
    } else if u < LOAD_FRAC + STORE_FRAC + CALL_FRAC {
        // Alternate calls and returns to keep the stack bounded.
        if call_stack.len() < 24 && rng.gen_bool(0.5) {
            let ret = my_pc + 4;
            call_stack.push(ret);
            *pc = BRANCH_PC_BASE + rng.gen_range(1 << 16) * 4;
            Some(BlockOp::new(OpKind::Call, ret, 0))
        } else if let Some(target) = call_stack.pop() {
            *pc = target;
            Some(BlockOp::new(OpKind::Return, target, 0))
        } else {
            None
        }
    } else {
        let target = BRANCH_PC_BASE + rng.gen_range(1 << 12) * 4;
        *pc = target;
        Some(BlockOp::new(OpKind::IndirectJump, my_pc, target))
    }
}

/// Streams [`Instr`]s for a population/input pair.
///
/// Every branch event from the underlying [`Trace`] becomes one
/// [`Instr::CondBranch`]; the instruction-count gap before it is filled
/// with ALU/memory/call instructions whose addresses follow the
/// [`MemoryModel`]. The stream is deterministic.
///
/// # Examples
///
/// ```
/// use rsc_mssp::program::{MemoryModel, ProgramStream};
/// use rsc_trace::{spec2000, InputId};
///
/// let pop = spec2000::benchmark("gzip").unwrap().population(1_000);
/// let mem = MemoryModel::for_benchmark("gzip");
/// let n = ProgramStream::new(&pop, InputId::Eval, 1_000, 7, mem).count();
/// assert!(n >= 1_000, "at least one instruction per branch event");
/// ```
#[derive(Debug, Clone)]
pub struct ProgramStream<'a> {
    trace: Trace<'a>,
    pending_branch: Option<BranchRecord>,
    block_left: u64,
    last_instr_count: u64,
    pc: u64,
    call_stack: Vec<u64>,
    mem: MemoryModel,
    rng: Xoshiro256,
    /// Trace records buffered through [`Trace::fill`] by the chunked
    /// path; the per-event path drains any leftovers before pulling from
    /// the trace directly, so the two modes can interleave freely.
    rec_buf: Vec<BranchRecord>,
    rec_pos: usize,
    rec_len: usize,
}

/// Trace records buffered per [`Trace::fill`] call on the chunked path.
const REC_CHUNK: usize = 1024;

impl<'a> ProgramStream<'a> {
    /// Creates a stream over `events` branch events.
    pub fn new(
        population: &'a Population,
        input: InputId,
        events: u64,
        seed: u64,
        mem: MemoryModel,
    ) -> Self {
        ProgramStream {
            trace: population.trace(input, events, seed),
            pending_branch: None,
            block_left: 0,
            last_instr_count: 0,
            pc: BRANCH_PC_BASE,
            call_stack: Vec::new(),
            mem,
            rng: Xoshiro256::seed_from(seed).fork(0x70_72_67), // "prg"
            rec_buf: Vec::new(),
            rec_pos: 0,
            rec_len: 0,
        }
    }

    /// Generates the next gap-filler instruction in flat form (`None` =
    /// ALU). This is the single generation point for both the per-event
    /// and the chunked path, so the two cannot diverge: every RNG draw
    /// happens here, in the same order, whichever representation the
    /// caller wants.
    #[inline]
    fn filler_op(&mut self) -> Option<BlockOp> {
        gen_op(&mut self.rng, &mut self.pc, &mut self.call_stack, &self.mem)
    }

    fn filler(&mut self) -> Instr {
        let pc = self.pc;
        match self.filler_op() {
            None => Instr::Alu { pc },
            Some(op) => op.to_instr(pc),
        }
    }

    /// Pulls the next trace record, draining any chunk-buffered records
    /// before touching the trace iterator.
    #[inline]
    fn next_record(&mut self) -> Option<BranchRecord> {
        if self.rec_pos < self.rec_len {
            let r = self.rec_buf[self.rec_pos];
            self.rec_pos += 1;
            return Some(r);
        }
        self.trace.next()
    }

    /// Like [`ProgramStream::next_record`], but refills the buffer
    /// through [`Trace::fill`] when it runs dry — the chunked path's
    /// amortized record source.
    #[inline]
    fn next_record_refilling(&mut self) -> Option<BranchRecord> {
        if self.rec_pos == self.rec_len {
            if self.rec_buf.len() < REC_CHUNK {
                self.rec_buf.resize(
                    REC_CHUNK,
                    BranchRecord {
                        branch: BranchId::new(0),
                        taken: false,
                        instr: 0,
                    },
                );
            }
            self.rec_len = self.trace.fill(&mut self.rec_buf);
            self.rec_pos = 0;
            if self.rec_len == 0 {
                return None;
            }
        }
        let r = self.rec_buf[self.rec_pos];
        self.rec_pos += 1;
        Some(r)
    }

    /// Fills `block` with up to `max_branches` branch events' worth of
    /// instructions and returns the number of branch events produced (0
    /// at end of stream). The block is cleared first.
    ///
    /// Draw-for-draw identical to pulling the same instructions through
    /// the [`Iterator`] — one shared generation point ([`Self::filler_op`])
    /// and the same record/gap state — so chunked consumers see exactly
    /// the per-event stream, and the two access styles may interleave on
    /// one stream (each continues where the other stopped).
    pub fn fill_block(&mut self, block: &mut InstrBlock, max_branches: u64) -> u64 {
        self.fill_block_impl::<true>(block, max_branches)
    }

    /// [`ProgramStream::fill_block`] without the interleaved `ops`
    /// mirror: same stream, same draws, arms only. For consumers that
    /// batch-step whole blocks and never walk them selectively (the
    /// superscalar baseline, the trailing check).
    pub fn fill_block_arms(&mut self, block: &mut InstrBlock, max_branches: u64) -> u64 {
        self.fill_block_impl::<false>(block, max_branches)
    }

    fn fill_block_impl<const WITH_OPS: bool>(
        &mut self,
        block: &mut InstrBlock,
        max_branches: u64,
    ) -> u64 {
        block.clear();
        debug_assert!(max_branches > 0, "blocks must hold at least one event");
        let mut alus: u32 = 0;
        let mut instructions: u64 = 0;
        let mut branches: u64 = 0;
        // Hoist the generator's scalar state (and the RNG) into locals so
        // the hot loop keeps it in registers; written back on every exit.
        let mut rng = self.rng.clone();
        let mut pc = self.pc;
        let mut block_left = self.block_left;
        let mem = self.mem;
        loop {
            while block_left > 0 {
                block_left -= 1;
                instructions += 1;
                match gen_op(&mut rng, &mut pc, &mut self.call_stack, &mem) {
                    None => alus += 1,
                    Some(mut op) => {
                        match op.kind {
                            OpKind::Load => block.mem.push(op.a),
                            OpKind::Store => block.mem.push(op.a | STORE_BIT),
                            _ => block.misc.push(op),
                        }
                        if WITH_OPS {
                            op.gap = alus;
                            block.ops.push(op);
                        }
                        alus = 0;
                    }
                }
            }
            if let Some(record) = self.pending_branch.take() {
                // Branch PC is a stable function of the static branch.
                let index = record.branch.index() as u32;
                pc = BRANCH_PC_BASE + u64::from(index) * 64 + 4;
                instructions += 1;
                branches += 1;
                debug_assert!(index < u32::MAX / 2, "branch index fits the cond arm");
                block.cond.push((index << 1) | u32::from(record.taken));
                if WITH_OPS {
                    block.ops.push(BlockOp {
                        kind: OpKind::Branch,
                        taken: record.taken,
                        gap: alus,
                        id: index,
                        a: BRANCH_PC_BASE + u64::from(index) * 64,
                        b: record.instr,
                    });
                }
                alus = 0;
                if branches == max_branches {
                    break;
                }
            }
            let Some(record) = self.next_record_refilling() else {
                break;
            };
            let gap = record.instr.saturating_sub(self.last_instr_count).max(1);
            self.last_instr_count = record.instr;
            self.pending_branch = Some(record);
            block_left = gap - 1;
        }
        self.rng = rng;
        self.pc = pc;
        self.block_left = block_left;
        debug_assert_eq!(alus, 0, "streams end at a branch");
        block.instructions = instructions;
        block.branches = branches;
        branches
    }
}

impl Iterator for ProgramStream<'_> {
    type Item = Instr;

    fn next(&mut self) -> Option<Instr> {
        if self.block_left > 0 {
            self.block_left -= 1;
            return Some(self.filler());
        }
        if let Some(record) = self.pending_branch.take() {
            // Branch PC is a stable function of the static branch.
            let pc = BRANCH_PC_BASE + record.branch.index() as u64 * 64;
            self.pc = pc + 4;
            return Some(Instr::CondBranch { pc, record });
        }
        let record = self.next_record()?;
        let gap = record.instr.saturating_sub(self.last_instr_count).max(1);
        self.last_instr_count = record.instr;
        self.pending_branch = Some(record);
        self.block_left = gap - 1;
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_trace::spec2000;

    fn stream(events: u64) -> Vec<Instr> {
        let pop = spec2000::benchmark("gzip").unwrap().population(events);
        let mem = MemoryModel::for_benchmark("gzip");
        ProgramStream::new(&pop, InputId::Eval, events, 3, mem).collect()
    }

    #[test]
    fn one_branch_per_trace_event() {
        let pop = spec2000::benchmark("gzip").unwrap().population(5_000);
        let mem = MemoryModel::for_benchmark("gzip");
        let branches = ProgramStream::new(&pop, InputId::Eval, 5_000, 3, mem)
            .filter(Instr::is_cond_branch)
            .count();
        assert_eq!(branches, 5_000);
    }

    #[test]
    fn instruction_count_matches_trace_gap() {
        let pop = spec2000::benchmark("gzip").unwrap().population(5_000);
        let last_instr = pop.trace(InputId::Eval, 5_000, 3).last().unwrap().instr;
        let mem = MemoryModel::for_benchmark("gzip");
        let total = ProgramStream::new(&pop, InputId::Eval, 5_000, 3, mem).count() as u64;
        assert_eq!(total, last_instr);
    }

    #[test]
    fn stream_is_deterministic() {
        assert_eq!(stream(2_000), stream(2_000));
    }

    #[test]
    fn mix_is_plausible() {
        let instrs = stream(20_000);
        let loads = instrs
            .iter()
            .filter(|i| matches!(i, Instr::Load { .. }))
            .count();
        let stores = instrs
            .iter()
            .filter(|i| matches!(i, Instr::Store { .. }))
            .count();
        let n = instrs.len() as f64;
        assert!(
            (loads as f64 / n - 0.22).abs() < 0.05,
            "load frac {}",
            loads as f64 / n
        );
        assert!(
            (stores as f64 / n - 0.10).abs() < 0.05,
            "store frac {}",
            stores as f64 / n
        );
    }

    #[test]
    fn calls_and_returns_are_balanced_enough() {
        let instrs = stream(50_000);
        let calls = instrs
            .iter()
            .filter(|i| matches!(i, Instr::Call { .. }))
            .count() as i64;
        let rets = instrs
            .iter()
            .filter(|i| matches!(i, Instr::Return { .. }))
            .count() as i64;
        assert!(calls > 0);
        assert!(
            (calls - rets).abs() <= 24,
            "calls {calls} vs returns {rets}"
        );
    }

    #[test]
    fn memory_models_differ_by_benchmark() {
        let mcf = MemoryModel::for_benchmark("mcf");
        let eon = MemoryModel::for_benchmark("eon");
        assert!(mcf.working_set_kib > eon.working_set_kib);
        let unknown = MemoryModel::for_benchmark("unknown");
        assert_eq!(unknown.working_set_kib, 512);
    }

    #[test]
    fn branch_pcs_are_stable_per_static_branch() {
        let instrs = stream(5_000);
        let mut pc_of_branch = std::collections::HashMap::new();
        for i in &instrs {
            if let Instr::CondBranch { pc, record } = i {
                let prev = pc_of_branch.insert(record.branch, *pc);
                if let Some(prev) = prev {
                    assert_eq!(prev, *pc);
                }
            }
        }
    }

    /// The state-relevant shape of an instruction: kind plus every field
    /// that can reach a cache or predictor. (PC is omitted for non-branch
    /// ops: blocks drop it because nothing downstream consumes it.)
    fn shape(i: &Instr) -> (u8, u64, u64, bool) {
        match *i {
            Instr::Alu { .. } => (0, 0, 0, false),
            Instr::Load { addr, .. } => (1, addr, 0, false),
            Instr::Store { addr, .. } => (2, addr, 0, false),
            Instr::CondBranch { pc, record } => (3, pc, record.instr, record.taken),
            Instr::Call { return_addr, .. } => (4, return_addr, 0, false),
            Instr::Return { target, .. } => (5, target, 0, false),
            Instr::IndirectJump { pc, target } => (6, pc, target, false),
        }
    }

    /// Expands a block's interleaved ops (gap ALUs included) into shapes.
    fn expand(block: &InstrBlock, out: &mut Vec<(u8, u64, u64, bool)>) {
        for op in block.ops() {
            for _ in 0..op.gap {
                out.push((0, 0, 0, false));
            }
            out.push(match op.kind {
                OpKind::Load => (1, op.a, 0, false),
                OpKind::Store => (2, op.a, 0, false),
                OpKind::Branch => (3, op.a, op.b, op.taken),
                OpKind::Call => (4, op.a, 0, false),
                OpKind::Return => (5, op.a, 0, false),
                OpKind::IndirectJump => (6, op.a, op.b, false),
            });
        }
    }

    fn gzip_stream(events: u64) -> (Population, MemoryModel) {
        let pop = spec2000::benchmark("gzip").unwrap().population(events);
        (pop, MemoryModel::for_benchmark("gzip"))
    }

    #[test]
    fn fill_block_expands_to_the_per_event_stream() {
        let (pop, mem) = gzip_stream(5_000);
        let reference: Vec<_> = ProgramStream::new(&pop, InputId::Eval, 5_000, 3, mem)
            .map(|i| shape(&i))
            .collect();
        for max_branches in [1u64, 7, 64, 1024] {
            let mut s = ProgramStream::new(&pop, InputId::Eval, 5_000, 3, mem);
            let mut block = InstrBlock::default();
            let mut got = Vec::with_capacity(reference.len());
            let mut instructions = 0;
            while s.fill_block(&mut block, max_branches) > 0 {
                expand(&block, &mut got);
                instructions += block.instructions();
            }
            assert_eq!(reference, got, "max_branches {max_branches}");
            assert_eq!(instructions, reference.len() as u64);
        }
    }

    #[test]
    fn arm_vectors_mirror_the_interleaved_ops() {
        let (pop, mem) = gzip_stream(5_000);
        let mut full = ProgramStream::new(&pop, InputId::Eval, 5_000, 3, mem);
        let mut arms = ProgramStream::new(&pop, InputId::Eval, 5_000, 3, mem);
        let mut fb = InstrBlock::default();
        let mut ab = InstrBlock::default();
        loop {
            let n = full.fill_block(&mut fb, 64);
            assert_eq!(n, arms.fill_block_arms(&mut ab, 64));
            if n == 0 {
                break;
            }
            // The arms are a projection of the interleaved ops...
            let mut mem_v = Vec::new();
            let mut cond_v = Vec::new();
            let mut misc_v = Vec::new();
            for op in fb.ops() {
                match op.kind {
                    OpKind::Load => mem_v.push(op.a),
                    OpKind::Store => mem_v.push(op.a | STORE_BIT),
                    OpKind::Branch => cond_v.push((op.id << 1) | u32::from(op.taken)),
                    _ => {
                        let mut flat = *op;
                        flat.gap = 0;
                        misc_v.push(flat);
                    }
                }
            }
            assert_eq!(fb.mem_ops(), mem_v);
            assert_eq!(fb.cond_ops(), cond_v);
            assert_eq!(fb.misc_ops(), misc_v);
            // ...and fill_block_arms produces the same arms and counts
            // from the same draws, with an empty ops mirror.
            assert_eq!(ab.ops(), &[]);
            assert_eq!(fb.mem_ops(), ab.mem_ops());
            assert_eq!(fb.cond_ops(), ab.cond_ops());
            assert_eq!(fb.misc_ops(), ab.misc_ops());
            assert_eq!(fb.instructions(), ab.instructions());
            assert_eq!(fb.branches(), ab.branches());
        }
        // Both streams ended in the same state.
        assert!(full.next().is_none() && arms.next().is_none());
    }

    #[test]
    fn iterator_and_fill_block_interleave_on_one_stream() {
        let (pop, mem) = gzip_stream(4_000);
        let reference: Vec<_> = ProgramStream::new(&pop, InputId::Eval, 4_000, 3, mem)
            .map(|i| shape(&i))
            .collect();
        // Alternate per-event pulls (odd counts, to stop mid-gap) with
        // block fills on one stream; the concatenation must be the
        // reference stream.
        let mut s = ProgramStream::new(&pop, InputId::Eval, 4_000, 3, mem);
        let mut block = InstrBlock::default();
        let mut got = Vec::with_capacity(reference.len());
        let mut exhausted = false;
        while !exhausted {
            for _ in 0..13 {
                match s.next() {
                    Some(i) => got.push(shape(&i)),
                    None => {
                        exhausted = true;
                        break;
                    }
                }
            }
            if s.fill_block(&mut block, 5) == 0 {
                exhausted = true;
            }
            expand(&block, &mut got);
        }
        assert_eq!(reference, got);
    }
}
