//! Synthetic program model: wraps a branch trace in a full instruction
//! stream (ALU ops, loads/stores with addresses, calls/returns, indirect
//! jumps) so the timing models have caches and predictors to exercise.

use rsc_trace::rng::Xoshiro256;
use rsc_trace::{BranchRecord, InputId, Population, Trace};

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Integer/FP computation.
    Alu { pc: u64 },
    /// Memory read.
    Load { pc: u64, addr: u64 },
    /// Memory write.
    Store { pc: u64, addr: u64 },
    /// Conditional branch carrying its trace record.
    CondBranch { pc: u64, record: BranchRecord },
    /// Call (pushes `return_addr`).
    Call { pc: u64, return_addr: u64 },
    /// Return (to `target`).
    Return { pc: u64, target: u64 },
    /// Indirect jump to `target`.
    IndirectJump { pc: u64, target: u64 },
}

impl Instr {
    /// The instruction's PC.
    pub fn pc(&self) -> u64 {
        match *self {
            Instr::Alu { pc }
            | Instr::Load { pc, .. }
            | Instr::Store { pc, .. }
            | Instr::CondBranch { pc, .. }
            | Instr::Call { pc, .. }
            | Instr::Return { pc, .. }
            | Instr::IndirectJump { pc, .. } => pc,
        }
    }

    /// Returns `true` for the conditional-branch variant.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Instr::CondBranch { .. })
    }
}

/// Memory-behavior parameters for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Total data working set in KiB.
    pub working_set_kib: u32,
    /// Fraction of accesses hitting the hot (stack-like) region.
    pub hot_fraction: f64,
    /// Hot region size in KiB.
    pub hot_kib: u32,
}

impl MemoryModel {
    /// A per-benchmark memory model. Sizes are chosen so relative cache
    /// behavior matches the benchmarks' reputations (mcf and vortex are
    /// memory-bound; gzip and eon are cache-friendly).
    pub fn for_benchmark(name: &str) -> MemoryModel {
        let (working_set_kib, hot_fraction) = match name {
            "mcf" => (8192, 0.35),
            "vortex" => (2048, 0.50),
            "gcc" => (1024, 0.55),
            "twolf" => (512, 0.60),
            "gap" => (1024, 0.55),
            "parser" => (512, 0.60),
            "perl" => (512, 0.60),
            "bzip2" => (1024, 0.55),
            "crafty" => (256, 0.70),
            "vpr" => (256, 0.65),
            "gzip" => (256, 0.70),
            "eon" => (128, 0.75),
            _ => (512, 0.60),
        };
        MemoryModel {
            working_set_kib,
            hot_fraction,
            hot_kib: 16,
        }
    }
}

/// Instruction-mix fractions (per non-branch slot).
const LOAD_FRAC: f64 = 0.26;
const STORE_FRAC: f64 = 0.12;
const CALL_FRAC: f64 = 0.015;
const INDIRECT_FRAC: f64 = 0.004;

/// Streams [`Instr`]s for a population/input pair.
///
/// Every branch event from the underlying [`Trace`] becomes one
/// [`Instr::CondBranch`]; the instruction-count gap before it is filled
/// with ALU/memory/call instructions whose addresses follow the
/// [`MemoryModel`]. The stream is deterministic.
///
/// # Examples
///
/// ```
/// use rsc_mssp::program::{MemoryModel, ProgramStream};
/// use rsc_trace::{spec2000, InputId};
///
/// let pop = spec2000::benchmark("gzip").unwrap().population(1_000);
/// let mem = MemoryModel::for_benchmark("gzip");
/// let n = ProgramStream::new(&pop, InputId::Eval, 1_000, 7, mem).count();
/// assert!(n >= 1_000, "at least one instruction per branch event");
/// ```
#[derive(Debug, Clone)]
pub struct ProgramStream<'a> {
    trace: Trace<'a>,
    pending_branch: Option<BranchRecord>,
    block_left: u64,
    last_instr_count: u64,
    pc: u64,
    call_stack: Vec<u64>,
    mem: MemoryModel,
    rng: Xoshiro256,
}

impl<'a> ProgramStream<'a> {
    /// Creates a stream over `events` branch events.
    pub fn new(
        population: &'a Population,
        input: InputId,
        events: u64,
        seed: u64,
        mem: MemoryModel,
    ) -> Self {
        ProgramStream {
            trace: population.trace(input, events, seed),
            pending_branch: None,
            block_left: 0,
            last_instr_count: 0,
            pc: 0x40_0000,
            call_stack: Vec::new(),
            mem,
            rng: Xoshiro256::seed_from(seed).fork(0x70_72_67), // "prg"
        }
    }

    fn data_addr(&mut self) -> u64 {
        const DATA_BASE: u64 = 0x1000_0000;
        if self.rng.gen_bool(self.mem.hot_fraction) {
            DATA_BASE + self.rng.gen_range(self.mem.hot_kib as u64 * 1024)
        } else {
            DATA_BASE + self.rng.gen_range(self.mem.working_set_kib as u64 * 1024)
        }
    }

    fn filler(&mut self) -> Instr {
        let pc = self.pc;
        self.pc += 4;
        let u = self.rng.next_f64();
        if u < LOAD_FRAC {
            let addr = self.data_addr();
            Instr::Load { pc, addr }
        } else if u < LOAD_FRAC + STORE_FRAC {
            let addr = self.data_addr();
            Instr::Store { pc, addr }
        } else if u < LOAD_FRAC + STORE_FRAC + CALL_FRAC {
            // Alternate calls and returns to keep the stack bounded.
            if self.call_stack.len() < 24 && self.rng.gen_bool(0.5) {
                let ret = pc + 4;
                self.call_stack.push(ret);
                self.pc = 0x40_0000 + self.rng.gen_range(1 << 16) * 4;
                Instr::Call {
                    pc,
                    return_addr: ret,
                }
            } else if let Some(target) = self.call_stack.pop() {
                self.pc = target;
                Instr::Return { pc, target }
            } else {
                Instr::Alu { pc }
            }
        } else if u < LOAD_FRAC + STORE_FRAC + CALL_FRAC + INDIRECT_FRAC {
            let target = 0x40_0000 + self.rng.gen_range(1 << 12) * 4;
            self.pc = target;
            Instr::IndirectJump { pc, target }
        } else {
            Instr::Alu { pc }
        }
    }
}

impl Iterator for ProgramStream<'_> {
    type Item = Instr;

    fn next(&mut self) -> Option<Instr> {
        if self.block_left > 0 {
            self.block_left -= 1;
            return Some(self.filler());
        }
        if let Some(record) = self.pending_branch.take() {
            // Branch PC is a stable function of the static branch.
            let pc = 0x40_0000 + record.branch.index() as u64 * 64;
            self.pc = pc + 4;
            return Some(Instr::CondBranch { pc, record });
        }
        let record = self.trace.next()?;
        let gap = record.instr.saturating_sub(self.last_instr_count).max(1);
        self.last_instr_count = record.instr;
        self.pending_branch = Some(record);
        self.block_left = gap - 1;
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_trace::spec2000;

    fn stream(events: u64) -> Vec<Instr> {
        let pop = spec2000::benchmark("gzip").unwrap().population(events);
        let mem = MemoryModel::for_benchmark("gzip");
        ProgramStream::new(&pop, InputId::Eval, events, 3, mem).collect()
    }

    #[test]
    fn one_branch_per_trace_event() {
        let pop = spec2000::benchmark("gzip").unwrap().population(5_000);
        let mem = MemoryModel::for_benchmark("gzip");
        let branches = ProgramStream::new(&pop, InputId::Eval, 5_000, 3, mem)
            .filter(Instr::is_cond_branch)
            .count();
        assert_eq!(branches, 5_000);
    }

    #[test]
    fn instruction_count_matches_trace_gap() {
        let pop = spec2000::benchmark("gzip").unwrap().population(5_000);
        let last_instr = pop.trace(InputId::Eval, 5_000, 3).last().unwrap().instr;
        let mem = MemoryModel::for_benchmark("gzip");
        let total = ProgramStream::new(&pop, InputId::Eval, 5_000, 3, mem).count() as u64;
        assert_eq!(total, last_instr);
    }

    #[test]
    fn stream_is_deterministic() {
        assert_eq!(stream(2_000), stream(2_000));
    }

    #[test]
    fn mix_is_plausible() {
        let instrs = stream(20_000);
        let loads = instrs
            .iter()
            .filter(|i| matches!(i, Instr::Load { .. }))
            .count();
        let stores = instrs
            .iter()
            .filter(|i| matches!(i, Instr::Store { .. }))
            .count();
        let n = instrs.len() as f64;
        assert!(
            (loads as f64 / n - 0.22).abs() < 0.05,
            "load frac {}",
            loads as f64 / n
        );
        assert!(
            (stores as f64 / n - 0.10).abs() < 0.05,
            "store frac {}",
            stores as f64 / n
        );
    }

    #[test]
    fn calls_and_returns_are_balanced_enough() {
        let instrs = stream(50_000);
        let calls = instrs
            .iter()
            .filter(|i| matches!(i, Instr::Call { .. }))
            .count() as i64;
        let rets = instrs
            .iter()
            .filter(|i| matches!(i, Instr::Return { .. }))
            .count() as i64;
        assert!(calls > 0);
        assert!(
            (calls - rets).abs() <= 24,
            "calls {calls} vs returns {rets}"
        );
    }

    #[test]
    fn memory_models_differ_by_benchmark() {
        let mcf = MemoryModel::for_benchmark("mcf");
        let eon = MemoryModel::for_benchmark("eon");
        assert!(mcf.working_set_kib > eon.working_set_kib);
        let unknown = MemoryModel::for_benchmark("unknown");
        assert_eq!(unknown.working_set_kib, 512);
    }

    #[test]
    fn branch_pcs_are_stable_per_static_branch() {
        let instrs = stream(5_000);
        let mut pc_of_branch = std::collections::HashMap::new();
        for i in &instrs {
            if let Instr::CondBranch { pc, record } = i {
                let prev = pc_of_branch.insert(record.branch, *pc);
                if let Some(prev) = prev {
                    assert_eq!(prev, *pc);
                }
            }
        }
    }
}
