//! Property-based tests on the MSSP substrates.

use proptest::prelude::*;
use rsc_mssp::cache::{Access, Cache};
use rsc_mssp::predictor::{Gshare, IndirectPredictor, ReturnAddressStack};
use rsc_mssp::program::{MemoryModel, ProgramStream};
use rsc_mssp::{machine, CoreModel, MachineConfig, MsspParams};
use rsc_trace::{spec2000, InputId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cache accounting: hits + misses equals accesses; re-access of the
    /// most recent block always hits.
    #[test]
    fn cache_accounting(
        kib in prop::sample::select(vec![1u32, 8, 64]),
        assoc in prop::sample::select(vec![1u32, 2, 8]),
        addrs in prop::collection::vec(0u64..(1 << 22), 1..512),
    ) {
        let mut c = Cache::new(kib, assoc, 64);
        for &a in &addrs {
            let _ = c.access(a);
            prop_assert_eq!(c.access(a), Access::Hit, "immediate re-access must hit");
        }
        prop_assert_eq!(c.hits() + c.misses(), 2 * addrs.len() as u64);
        prop_assert!(c.misses() <= addrs.len() as u64);
    }

    /// An infinite-capacity-equivalent cache (huge) only takes cold misses.
    #[test]
    fn big_cache_only_cold_misses(addrs in prop::collection::vec(0u64..(1 << 16), 1..512)) {
        let mut c = Cache::new(16 * 1024, 16, 64);
        for &a in &addrs {
            let _ = c.access(a);
        }
        let distinct_blocks: std::collections::HashSet<u64> =
            addrs.iter().map(|a| a >> 6).collect();
        prop_assert_eq!(c.misses(), distinct_blocks.len() as u64);
    }

    /// gshare beats a coin on strongly biased outcome streams.
    #[test]
    fn gshare_exploits_bias(seed in any::<u64>(), bias_num in 90u64..100) {
        let mut g = Gshare::new(4096);
        let mut x = seed | 1;
        let n = 4_000u64;
        let mut correct = 0;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let taken = x % 100 < bias_num;
            if g.predict_and_update(0x8000, taken) {
                correct += 1;
            }
        }
        let acc = correct as f64 / n as f64;
        prop_assert!(acc > 0.75, "accuracy {acc} at bias {bias_num}%");
    }

    /// The RAS predicts perfectly for any properly nested call tree that
    /// fits its depth.
    #[test]
    fn ras_nested_calls(depth in 1usize..16) {
        let mut ras = ReturnAddressStack::new(32);
        let addrs: Vec<u64> = (0..depth as u64).map(|i| 0x1000 + i * 8).collect();
        for &a in &addrs {
            ras.push(a);
        }
        for &a in addrs.iter().rev() {
            prop_assert!(ras.predict_return(a));
        }
        prop_assert_eq!(ras.depth(), 0);
    }

    /// The indirect predictor is exactly a last-target table. (Targets are
    /// nonzero: the empty table slot is indistinguishable from target 0.)
    #[test]
    fn indirect_last_target(targets in prop::collection::vec(1u64..64, 1..64)) {
        let mut ip = IndirectPredictor::new(64);
        let mut last: Option<u64> = None;
        for &t in &targets {
            let correct = ip.predict_and_update(0x400, t);
            prop_assert_eq!(correct, last == Some(t));
            last = Some(t);
        }
    }

    /// Core timing: cycles are at least dispatch-bound and IPC never
    /// exceeds the width.
    #[test]
    fn core_timing_bounds(seed in any::<u64>(), events in 100u64..2_000) {
        let pop = spec2000::benchmark("gzip").unwrap().population(events);
        let mem = MemoryModel::for_benchmark("gzip");
        let mcfg = MachineConfig::table5();
        let mut core = CoreModel::new(mcfg.leading, &mcfg);
        let mut l2 = Cache::new(mcfg.l2_kib, mcfg.l2_assoc, mcfg.block_bytes);
        let mut instructions = 0u64;
        for instr in ProgramStream::new(&pop, InputId::Eval, events, seed, mem) {
            core.step(&instr, &mut l2);
            instructions += 1;
        }
        let width = u64::from(mcfg.leading.width);
        prop_assert!(core.cycles() >= instructions.div_ceil(width));
        prop_assert!(core.ipc() <= width as f64 + 1e-9);
        prop_assert_eq!(core.stats().instructions, instructions);
    }

    /// MSSP accounting invariants hold for arbitrary small runs.
    #[test]
    fn mssp_accounting(seed in any::<u64>(), events in 500u64..5_000) {
        let pop = spec2000::benchmark("mcf").unwrap().population(events);
        let r = machine::run_mssp(&pop, InputId::Eval, events, seed, &MsspParams::new());
        prop_assert!(r.master_instructions <= r.original_instructions);
        prop_assert!(r.task_misspecs <= r.tasks);
        prop_assert!(r.task_misspecs <= r.branch_misspecs || r.branch_misspecs == 0);
        prop_assert!(r.mssp_cycles > 0);
        prop_assert!((0.0..=1.0).contains(&r.distillation_ratio()));
    }

    /// The program stream's branch count equals the trace event count and
    /// PCs are 4-byte aligned.
    #[test]
    fn program_stream_structure(seed in any::<u64>(), events in 100u64..2_000) {
        let pop = spec2000::benchmark("eon").unwrap().population(events);
        let mem = MemoryModel::for_benchmark("eon");
        let mut branches = 0u64;
        for i in ProgramStream::new(&pop, InputId::Eval, events, seed, mem) {
            prop_assert_eq!(i.pc() % 4, 0);
            if i.is_cond_branch() {
                branches += 1;
            }
        }
        prop_assert_eq!(branches, events);
    }
}
