//! Thread primitives for independent work items: an order-preserving
//! [`par_map`] over scoped throwaway threads, and a persistent
//! [`WorkerPool`] whose long-lived workers own per-worker state.
//!
//! Every reproduction experiment maps independently over benchmarks, and
//! the sharded offline profiler maps over trace shards; `par_map` runs
//! those closures on up to [`max_threads`] threads with scoped borrows
//! (no `'static` bound, no external dependencies) while keeping result
//! order. The sharded controller engine instead dispatches every chunk,
//! so it uses a [`WorkerPool`]: threads are spawned once, own their
//! shard state for their whole life, and are fed borrowed jobs through
//! channels with a completion barrier per dispatch.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;

/// Global cap on `par_map` fan-out. Zero means "use
/// `available_parallelism`".
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Caps the number of worker threads `par_map` spawns. `0` restores the
/// default (`available_parallelism`). The `repro --threads N` flag routes
/// here.
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::Relaxed);
}

/// The current effective thread cap.
pub fn max_threads() -> usize {
    let cap = MAX_THREADS.load(Ordering::Relaxed);
    if cap > 0 {
        return cap;
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

std::thread_local! {
    /// Countdown for [`fail_nth_spawn`]; `0` means no failure armed.
    static FAIL_NTH_SPAWN: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Test seam: arms the *n*-th (1-based) subsequent [`WorkerPool`] spawn
/// attempt **on this thread** to fail with a synthetic [`std::io::Error`],
/// without consuming an OS thread. Pools are spawned from the calling
/// thread, so this injects exactly where `WorkerPool::new`'s recovery
/// path runs. Passing `0` disarms.
///
/// Spawn failures are otherwise nearly impossible to provoke portably
/// (they require hitting an OS thread limit), yet the fallback they
/// trigger — hand every state back so the caller can run inline — is a
/// correctness path the sharded engine depends on.
pub fn fail_nth_spawn(n: usize) {
    FAIL_NTH_SPAWN.with(|c| c.set(n));
}

/// Consumes one spawn attempt from the injection countdown; `true` means
/// this attempt must fail.
fn take_injected_spawn_failure() -> bool {
    FAIL_NTH_SPAWN.with(|c| match c.get() {
        0 => false,
        1 => {
            c.set(0);
            true
        }
        n => {
            c.set(n - 1);
            false
        }
    })
}

/// Applies `f` to every item in parallel, preserving input order.
///
/// `f` may borrow from the environment (threads are scoped). Panics in `f`
/// propagate.
///
/// # Examples
///
/// ```
/// use rsc_util::parallel::par_map;
/// let squares = par_map(vec![1, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = max_threads().min(n);
    if n <= 1 || threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each slot is taken once");
                let r = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("all slots filled")
        })
        .collect()
}

/// A job sent to one worker: a borrowed closure, lifetime-erased for the
/// channel. Soundness contract (upheld by [`WorkerPool::run_with`]): the
/// pool waits on the completion barrier before the borrow ends, so the
/// pointer never outlives the closure it points to.
struct Job<S> {
    f: *const (dyn Fn(usize, &mut S) + Sync),
}

// SAFETY: the pointee is `Sync` (shared across workers by reference) and
// `run_with` keeps it alive until every worker has acknowledged
// completion, so sending the pointer to another thread is sound.
unsafe impl<S> Send for Job<S> {}

enum Msg<S> {
    Run(Job<S>),
    Stop,
}

struct Worker<S> {
    tx: Sender<Msg<S>>,
    done: Receiver<bool>,
    handle: Option<JoinHandle<S>>,
}

/// Persistent worker pool with worker-owned state.
///
/// `WorkerPool::new(states)` spawns one long-lived thread per state; each
/// worker owns its `S` for the pool's whole life. [`run_with`] dispatches
/// one borrowed closure to every worker and waits for all of them on a
/// completion barrier — optionally overlapping caller-side work with the
/// workers. [`map`] and [`call`] are conveniences built on top.
///
/// A panic inside a worker's job is caught on the worker thread (the
/// thread itself survives and keeps draining its channel, so joins never
/// deadlock), reported through the barrier, and re-raised on the caller
/// after every worker has checked in. The pool is then *poisoned*: all
/// further dispatches panic immediately, because the worker state that
/// panicked may be half-updated. Dropping the pool — poisoned or not —
/// sends every worker a stop message and joins it.
///
/// ```
/// use rsc_util::parallel::WorkerPool;
/// let mut pool = WorkerPool::new(vec![10u64, 20, 30], "doc").unwrap();
/// let out = pool.map(|w, state| {
///     *state += 1;
///     *state + w as u64
/// });
/// assert_eq!(out, vec![11, 22, 33]);
/// ```
pub struct WorkerPool<S> {
    workers: Vec<Worker<S>>,
    poisoned: bool,
}

impl<S: Send + 'static> WorkerPool<S> {
    /// Spawns one worker thread per state. `name` seeds the thread names
    /// (`{name}-w{k}`). Fails only if the OS refuses to spawn a thread;
    /// already-spawned workers are then shut down cleanly and *all*
    /// states are handed back in order, so the caller can fall back to
    /// running them inline.
    #[allow(clippy::result_large_err)]
    pub fn new(states: Vec<S>, name: &str) -> Result<Self, (std::io::Error, Vec<S>)> {
        let mut pool = WorkerPool {
            workers: Vec::with_capacity(states.len()),
            poisoned: false,
        };
        let mut iter = states.into_iter();
        let mut k = 0usize;
        while let Some(state) = iter.next() {
            let (tx, rx) = channel::<Msg<S>>();
            let (done_tx, done) = channel::<bool>();
            // Stage the state in a cell: `spawn` consumes its closure even
            // on failure, and the state must survive to be handed back.
            let cell = std::sync::Arc::new(Mutex::new(Some(state)));
            let worker_cell = std::sync::Arc::clone(&cell);
            let spawned = if take_injected_spawn_failure() {
                Err(std::io::Error::other("injected spawn failure"))
            } else {
                std::thread::Builder::new()
                    .name(format!("{name}-w{k}"))
                    .spawn(move || {
                        let mut state = worker_cell
                            .lock()
                            .expect("state cell lock")
                            .take()
                            .expect("state staged by new()");
                        drop(worker_cell);
                        while let Ok(Msg::Run(job)) = rx.recv() {
                            // SAFETY: see `Job` — the caller keeps the
                            // closure alive until this ack is received.
                            let f = unsafe { &*job.f };
                            let ok = catch_unwind(AssertUnwindSafe(|| f(k, &mut state))).is_ok();
                            // A dropped pool means no one is listening;
                            // nothing to report.
                            let _ = done_tx.send(ok);
                        }
                        state
                    })
            };
            match spawned {
                Ok(handle) => pool.workers.push(Worker {
                    tx,
                    done,
                    handle: Some(handle),
                }),
                Err(e) => {
                    let orphan = cell
                        .lock()
                        .expect("state cell lock")
                        .take()
                        .expect("failed spawn never took the state");
                    let mut recovered = pool.into_states();
                    recovered.push(orphan);
                    recovered.extend(iter);
                    return Err((e, recovered));
                }
            }
            k += 1;
        }
        Ok(pool)
    }

    /// Number of workers (== number of states).
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the pool has no workers.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Whether a previous job panicked. A poisoned pool refuses further
    /// dispatches (state may be half-updated) but still drops cleanly.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Runs `f(worker_index, &mut state)` on every worker, calls
    /// `overlap()` on the caller thread while the workers run, then waits
    /// for every worker. This is the double-buffering hook: route the
    /// next chunk in `overlap` while the workers observe the current one.
    ///
    /// Panics if a worker's job panicked (after all workers have checked
    /// in, so nothing is left running loose) or if the pool is poisoned.
    /// If `overlap` itself panics, the barrier is still drained before
    /// the panic propagates — workers never outlive the borrows they got.
    pub fn run_with<F, G>(&mut self, f: F, overlap: G)
    where
        F: Fn(usize, &mut S) + Sync,
        G: FnOnce(),
    {
        assert!(!self.poisoned, "worker pool poisoned by an earlier panic");
        let wide: &(dyn Fn(usize, &mut S) + Sync) = &f;
        // SAFETY: erase the borrow lifetime for the channel; the guard
        // below waits for every worker before this frame (and thus `f`)
        // can unwind away.
        let job_ptr: *const (dyn Fn(usize, &mut S) + Sync) = unsafe { std::mem::transmute(wide) };
        for w in &self.workers {
            w.tx.send(Msg::Run(Job { f: job_ptr }))
                .expect("worker thread alive until Stop");
        }

        struct Barrier<'a, S> {
            pool: &'a mut WorkerPool<S>,
            waited: bool,
        }
        impl<S> Barrier<'_, S> {
            fn wait(&mut self) -> bool {
                self.waited = true;
                let mut all_ok = true;
                for w in &self.pool.workers {
                    // A disconnected channel means the worker died
                    // outside our catch: treat as a failed job.
                    all_ok &= w.done.recv().unwrap_or(false);
                }
                if !all_ok {
                    self.pool.poisoned = true;
                }
                all_ok
            }
        }
        impl<S> Drop for Barrier<'_, S> {
            fn drop(&mut self) {
                if !self.waited {
                    self.wait();
                }
            }
        }

        let mut barrier = Barrier {
            pool: self,
            waited: false,
        };
        overlap();
        let ok = barrier.wait();
        assert!(ok, "a worker panicked while running a pool job");
    }

    /// Runs `f` on every worker and returns the results in worker order.
    pub fn map<R, F>(&mut self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut S) -> R + Sync,
    {
        let slots: Vec<Mutex<Option<R>>> = (0..self.len()).map(|_| Mutex::new(None)).collect();
        self.run_with(
            |w, state| {
                *slots[w].lock().expect("slot lock") = Some(f(w, state));
            },
            || {},
        );
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot lock")
                    .expect("every worker filled its slot")
            })
            .collect()
    }

    /// Runs `f` on one worker only and returns its result.
    pub fn call<R, F>(&mut self, worker: usize, f: F) -> R
    where
        R: Send,
        F: FnOnce(usize, &mut S) -> R + Send,
    {
        assert!(worker < self.len(), "worker index out of range");
        assert!(!self.poisoned, "worker pool poisoned by an earlier panic");
        let cell = Mutex::new(Some(f));
        let out: Mutex<Option<R>> = Mutex::new(None);
        let run = |w: usize, state: &mut S| {
            let g = cell
                .lock()
                .expect("cell lock")
                .take()
                .expect("single dispatch");
            *out.lock().expect("out lock") = Some(g(w, state));
        };
        let wide: &(dyn Fn(usize, &mut S) + Sync) = &run;
        // SAFETY: same contract as `run_with` — the barrier below waits
        // for this worker before `run` goes out of scope.
        let job_ptr: *const (dyn Fn(usize, &mut S) + Sync) = unsafe { std::mem::transmute(wide) };
        self.workers[worker]
            .tx
            .send(Msg::Run(Job { f: job_ptr }))
            .expect("worker thread alive until Stop");
        let ok = self.workers[worker].done.recv().unwrap_or(false);
        if !ok {
            self.poisoned = true;
            panic!("a worker panicked while running a pool job");
        }
        out.into_inner()
            .expect("out lock")
            .expect("worker filled the slot")
    }

    /// Shuts the pool down and returns each worker's state, in order.
    pub fn into_states(mut self) -> Vec<S> {
        let mut states = Vec::with_capacity(self.workers.len());
        for w in &mut self.workers {
            let _ = w.tx.send(Msg::Stop);
            if let Some(handle) = w.handle.take() {
                if let Ok(state) = handle.join() {
                    states.push(state);
                }
            }
        }
        self.workers.clear();
        states
    }
}

impl<S> Drop for WorkerPool<S> {
    fn drop(&mut self) {
        for w in &mut self.workers {
            // The worker may already be gone (its thread panicked outside
            // a job); a failed send is fine — there is nothing to stop.
            let _ = w.tx.send(Msg::Stop);
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
        assert_eq!(par_map(vec![7], |x: i32| x + 1), vec![8]);
    }

    #[test]
    fn borrows_environment() {
        let base = 10;
        let out = par_map(vec![1, 2, 3], |x| x + base);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    #[should_panic]
    fn propagates_panics() {
        let _ = par_map(vec![1, 2, 3], |x: i32| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn thread_cap_of_one_is_sequential_and_correct() {
        set_max_threads(1);
        let out = par_map((0..32).collect(), |x: i32| x + 1);
        set_max_threads(0);
        assert_eq!(out, (1..33).collect::<Vec<_>>());
    }

    #[test]
    fn pool_map_mutates_worker_state_in_order() {
        let mut pool = WorkerPool::new(vec![0u64; 4], "t").unwrap();
        for round in 1..=3u64 {
            let out = pool.map(|w, state| {
                *state += round;
                (w, *state)
            });
            let expect: Vec<(usize, u64)> = (0..4).map(|w| (w, (1..=round).sum::<u64>())).collect();
            assert_eq!(out, expect, "round {round}");
        }
    }

    #[test]
    fn pool_run_with_overlaps_caller_work_and_borrows_stack() {
        let inputs = [5u32, 6, 7];
        let slots: Vec<Mutex<u32>> = (0..3).map(|_| Mutex::new(0)).collect();
        let mut pool = WorkerPool::new(vec![(); 3], "t").unwrap();
        let mut overlapped = false;
        pool.run_with(
            |w, ()| {
                *slots[w].lock().unwrap() = inputs[w] * 10;
            },
            || {
                overlapped = true;
            },
        );
        assert!(overlapped);
        let got: Vec<u32> = slots.iter().map(|m| *m.lock().unwrap()).collect();
        assert_eq!(got, vec![50, 60, 70]);
    }

    #[test]
    fn pool_call_targets_one_worker() {
        let mut pool = WorkerPool::new(vec![10i64, 20, 30], "t").unwrap();
        let r = pool.call(1, |w, state| {
            *state += 1;
            (w, *state)
        });
        assert_eq!(r, (1, 21));
        assert_eq!(pool.map(|_, s| *s), vec![10, 21, 30]);
    }

    #[test]
    fn pool_into_states_returns_final_states() {
        let mut pool = WorkerPool::new(vec![1u8, 2, 3], "t").unwrap();
        pool.map(|_, s| *s *= 2);
        assert_eq!(pool.into_states(), vec![2, 4, 6]);
    }

    #[test]
    fn pool_worker_panic_propagates_without_deadlock() {
        let mut pool = WorkerPool::new(vec![0u8; 3], "t").unwrap();
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_with(
                |w, _| {
                    if w == 1 {
                        panic!("boom");
                    }
                },
                || {},
            );
        }));
        assert!(r.is_err(), "the panic reaches the caller");
        assert!(pool.is_poisoned());
        let again = std::panic::catch_unwind(AssertUnwindSafe(|| pool.map(|_, s| *s)));
        assert!(again.is_err(), "a poisoned pool refuses dispatches");
        drop(pool); // and still joins cleanly — the test would hang otherwise
    }

    #[test]
    fn pool_drop_joins_cleanly_without_jobs() {
        let pool = WorkerPool::new(vec![(); 8], "t").unwrap();
        drop(pool);
    }

    #[test]
    fn spawn_failure_on_first_worker_returns_all_states_in_order() {
        fail_nth_spawn(1);
        let err = WorkerPool::new(vec![1u8, 2, 3, 4], "t").err().unwrap();
        assert_eq!(err.1, vec![1, 2, 3, 4], "every state handed back");
        assert_eq!(err.0.to_string(), "injected spawn failure");
        // The seam disarms after firing: the next pool spawns fine.
        let mut pool = WorkerPool::new(vec![1u8, 2, 3, 4], "t").unwrap();
        assert_eq!(pool.map(|_, s| *s), vec![1, 2, 3, 4]);
    }

    #[test]
    fn spawn_failure_mid_way_recovers_already_spawned_states_in_order() {
        // Worker 0 and 1 spawn, worker 2 fails: the recovery path has to
        // join live workers, reclaim the orphaned state, and drain the
        // unspawned remainder — in the original order.
        fail_nth_spawn(3);
        let err = WorkerPool::new(vec![10u8, 11, 12, 13, 14], "t")
            .err()
            .unwrap();
        assert_eq!(err.1, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn pool_call_panic_poisons_without_deadlocking() {
        let mut pool = WorkerPool::new(vec![0u8; 3], "t").unwrap();
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.call(2, |_, _| -> u8 { panic!("boom") });
        }));
        assert!(r.is_err(), "the panic reaches the caller");
        assert!(pool.is_poisoned());
        let again = std::panic::catch_unwind(AssertUnwindSafe(|| pool.call(0, |_, s| *s)));
        assert!(again.is_err(), "a poisoned pool refuses single dispatches");
        drop(pool); // joins cleanly — the test would hang otherwise
    }

    #[test]
    fn overlap_panic_still_drains_the_barrier() {
        let mut pool = WorkerPool::new(vec![0u64; 4], "t").unwrap();
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_with(|_, s| *s += 1, || panic!("caller-side boom"));
        }));
        assert!(r.is_err());
        // The workers' jobs succeeded, so the pool is *not* poisoned and
        // the barrier was drained before the unwind (otherwise this
        // dispatch would race the previous job's borrows).
        assert!(!pool.is_poisoned());
        assert_eq!(pool.map(|_, s| *s), vec![1, 1, 1, 1]);
    }
}
