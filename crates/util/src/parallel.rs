//! Tiny order-preserving parallel map for independent work items.
//!
//! Every reproduction experiment maps independently over benchmarks, and
//! the sharded offline profiler maps over trace shards; this runs those
//! closures on up to [`max_threads`] threads with scoped borrows (no
//! `'static` bound, no external dependencies) while keeping result order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global cap on `par_map` fan-out. Zero means "use
/// `available_parallelism`".
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Caps the number of worker threads `par_map` spawns. `0` restores the
/// default (`available_parallelism`). The `repro --threads N` flag routes
/// here.
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::Relaxed);
}

/// The current effective thread cap.
pub fn max_threads() -> usize {
    let cap = MAX_THREADS.load(Ordering::Relaxed);
    if cap > 0 {
        return cap;
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// Applies `f` to every item in parallel, preserving input order.
///
/// `f` may borrow from the environment (threads are scoped). Panics in `f`
/// propagate.
///
/// # Examples
///
/// ```
/// use rsc_util::parallel::par_map;
/// let squares = par_map(vec![1, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = max_threads().min(n);
    if n <= 1 || threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each slot is taken once");
                let r = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("all slots filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
        assert_eq!(par_map(vec![7], |x: i32| x + 1), vec![8]);
    }

    #[test]
    fn borrows_environment() {
        let base = 10;
        let out = par_map(vec![1, 2, 3], |x| x + base);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    #[should_panic]
    fn propagates_panics() {
        let _ = par_map(vec![1, 2, 3], |x: i32| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn thread_cap_of_one_is_sequential_and_correct() {
        set_max_threads(1);
        let out = par_map((0..32).collect(), |x: i32| x + 1);
        set_max_threads(0);
        assert_eq!(out, (1..33).collect::<Vec<_>>());
    }
}
