//! Bounded-admission primitives for backpressure.
//!
//! [`Gate`] is a counting semaphore with a hard capacity: `acquire`
//! blocks while `cap` permits are outstanding, so a producer that is
//! faster than its consumer stalls *itself* instead of growing an
//! unbounded queue. The serve daemon puts one gate in front of every
//! tenant's ingest path — a slow tenant's connections pile up on that
//! tenant's gate and nowhere else.
//!
//! Permits are RAII ([`GatePermit`]), so a panicking holder still
//! releases its slot and cannot deadlock the remaining waiters.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A counting semaphore with a fixed capacity.
///
/// # Examples
///
/// ```
/// use rsc_util::sync::Gate;
///
/// let gate = Gate::new(2);
/// let a = gate.acquire();
/// let b = gate.try_acquire().expect("one slot left");
/// assert!(gate.try_acquire().is_none(), "gate is full");
/// drop(a);
/// assert!(gate.try_acquire().is_some());
/// # drop(b);
/// ```
#[derive(Debug)]
pub struct Gate {
    cap: usize,
    held: Mutex<usize>,
    freed: Condvar,
}

impl Gate {
    /// A gate admitting at most `cap` concurrent holders.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero — a gate nobody can pass is a deadlock,
    /// not a configuration.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "gate capacity must be at least 1");
        Gate {
            cap,
            held: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Permits currently outstanding.
    pub fn in_use(&self) -> usize {
        *self.held.lock().expect("gate lock")
    }

    /// Blocks until a permit is free, then takes it.
    pub fn acquire(&self) -> GatePermit<'_> {
        let mut held = self.held.lock().expect("gate lock");
        while *held >= self.cap {
            held = self.freed.wait(held).expect("gate lock");
        }
        *held += 1;
        GatePermit { gate: self }
    }

    /// Takes a permit if one is free right now.
    pub fn try_acquire(&self) -> Option<GatePermit<'_>> {
        let mut held = self.held.lock().expect("gate lock");
        if *held >= self.cap {
            return None;
        }
        *held += 1;
        Some(GatePermit { gate: self })
    }

    /// Blocks up to `timeout` for a permit; `None` on timeout. Lets a
    /// stalled producer give up with a structured error instead of
    /// waiting forever on a tenant that will never drain.
    pub fn acquire_timeout(&self, timeout: Duration) -> Option<GatePermit<'_>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut held = self.held.lock().expect("gate lock");
        while *held >= self.cap {
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, res) = self
                .freed
                .wait_timeout(held, deadline - now)
                .expect("gate lock");
            held = guard;
            if res.timed_out() && *held >= self.cap {
                return None;
            }
        }
        *held += 1;
        Some(GatePermit { gate: self })
    }

    fn release(&self) {
        let mut held = self.held.lock().expect("gate lock");
        *held = held.saturating_sub(1);
        self.freed.notify_one();
    }
}

/// RAII permit returned by [`Gate::acquire`]; releasing is dropping.
#[derive(Debug)]
pub struct GatePermit<'a> {
    gate: &'a Gate,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn capacity_bounds_concurrent_holders() {
        let gate = Gate::new(3);
        let a = gate.acquire();
        let b = gate.acquire();
        let c = gate.acquire();
        assert_eq!(gate.in_use(), 3);
        assert!(gate.try_acquire().is_none());
        drop(b);
        assert_eq!(gate.in_use(), 2);
        let d = gate.try_acquire().expect("freed slot is reusable");
        drop((a, c, d));
        assert_eq!(gate.in_use(), 0);
    }

    #[test]
    fn acquire_timeout_gives_up_when_full() {
        let gate = Gate::new(1);
        let _held = gate.acquire();
        let start = std::time::Instant::now();
        assert!(gate.acquire_timeout(Duration::from_millis(30)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn blocked_acquirers_wake_in_bounded_time() {
        let gate = Arc::new(Gate::new(2));
        let peak = Arc::new(AtomicUsize::new(0));
        let inside = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let gate = gate.clone();
                let peak = peak.clone();
                let inside = inside.clone();
                std::thread::spawn(move || {
                    let _permit = gate.acquire();
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(2));
                    inside.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "capacity was exceeded");
    }

    #[test]
    fn panicking_holder_still_releases() {
        let gate = Arc::new(Gate::new(1));
        let g2 = gate.clone();
        let _ = std::thread::spawn(move || {
            let _permit = g2.acquire();
            panic!("holder dies");
        })
        .join();
        assert!(
            gate.acquire_timeout(Duration::from_millis(500)).is_some(),
            "permit leaked by a panicking holder"
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = Gate::new(0);
    }
}
