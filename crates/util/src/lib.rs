//! # rsc-util — shared infrastructure
//!
//! Small dependency-free helpers used by more than one crate in the
//! workspace. Currently: [`parallel`], the scoped order-preserving parallel
//! map (promoted out of `rsc-bench` so the library crates — offline profile
//! sharding in `rsc-profile`, experiment fan-out in `rsc-bench` — share one
//! implementation and one global thread cap), and [`sync`], the bounded
//! admission gate behind the serve daemon's per-tenant backpressure.

pub mod parallel;
pub mod sync;

pub use parallel::{max_threads, par_map, set_max_threads};
pub use sync::{Gate, GatePermit};
