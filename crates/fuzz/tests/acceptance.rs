//! The issue's acceptance gates, run exactly as `repro fuzz` and CI do:
//! a fixed-seed 200-iteration campaign must strictly beat the combined
//! FSM-transition coverage of the 7 hand-written adversary scenarios,
//! and the analytic Markov oracle must agree with simulation (within the
//! documented tolerance) on every corpus entry.

use rsc_fuzz::{fuzz, AnalyticCheck, FuzzConfig, KeepReason};

fn campaign() -> FuzzConfig {
    FuzzConfig {
        iters: 200,
        seed: 42,
        minimize: true,
        ..FuzzConfig::new()
    }
}

#[test]
fn fixed_seed_campaign_strictly_beats_the_handwritten_scenarios() {
    let report = fuzz(&campaign());
    assert!(
        report.fuzz_points > report.baseline_points,
        "fuzzing must find FSM-transition structure the 7 hand-written \
         scenarios miss: baseline {} points, fuzz {} points",
        report.baseline_points,
        report.fuzz_points,
    );
    assert!(
        report
            .corpus
            .iter()
            .any(|e| e.reason == KeepReason::NewCoverage),
        "the gain must come from admitted coverage finds"
    );
}

#[test]
fn analytic_oracle_explains_every_corpus_entry() {
    let report = fuzz(&campaign());
    for (i, e) in report.corpus.iter().enumerate() {
        match &e.analytic {
            AnalyticCheck::Checked {
                predicted,
                simulated,
                within_tolerance,
            } => assert!(
                within_tolerance,
                "entry {i} ({}) diverged: predicted {predicted:.5}, \
                 simulated {simulated:.5}",
                e.genome.describe(),
            ),
            // The "tiny" parameter set is inside the model's supported
            // subset, so nothing may dodge the check.
            other => panic!("entry {i} was not analytically checked: {other:?}"),
        }
    }
    assert!(report.divergences.is_empty());
}

#[test]
fn worst_case_is_minimized_and_still_reproduces() {
    let report = fuzz(&campaign());
    let worst = report.worst.expect("an adversarial corpus misspeculates");
    assert!(worst.misspec_rate > 0.0);
    let small = worst.minimized.expect("minimization was requested");
    assert!(
        (small.len() as u64) < worst.events,
        "ddmin should remove events: {} -> {}",
        worst.events,
        small.len()
    );
}

#[test]
fn report_is_reproducible_from_its_config() {
    let report = fuzz(&campaign());
    assert_eq!(fuzz(&report.config), report);
}
