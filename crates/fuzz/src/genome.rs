//! Scenario genomes: the fuzzer's mutable representation of a workload.
//!
//! A genome is a *sequence of adversary-scenario segments* plus a seed.
//! The trace it expresses is the concatenation of each segment's
//! generated events (instruction counters re-based so the stream stays
//! strictly increasing). Segments reuse branch ids, so a segment
//! boundary is an *input switch*: the same static branches abruptly
//! change behavior — exactly the cross-input bias movement the paper's
//! reactive FSM exists to survive.
//!
//! Mutation operates on generator parameters (phase lengths, flip
//! correlations, hot-set churn, correlated-group membership) and on the
//! segment list (split/remove/duplicate/swap = input-switch structure),
//! never on raw events — every corpus entry stays replayable from a
//! handful of integers.

use rsc_conformance::json::Json;
use rsc_trace::rng::{SplitMix64, Xoshiro256};
use rsc_trace::{BranchRecord, Scenario};

/// Ceiling on segments per genome; keeps mutation from degenerating into
/// noise soup.
pub const MAX_SEGMENTS: usize = 8;
/// Floor on events per segment; shorter than a monitor window is inert.
pub const MIN_SEGMENT_EVENTS: u64 = 50;
/// Ceiling on events per segment; bounds the cost of one fuzz execution.
pub const MAX_SEGMENT_EVENTS: u64 = 20_000;

/// One scenario played for a bounded number of events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// The adversary generator and its parameters.
    pub scenario: Scenario,
    /// Events this segment contributes.
    pub events: u64,
}

/// A replayable, mutable scenario program.
#[derive(Debug, Clone, PartialEq)]
pub struct Genome {
    /// Seeds every segment's generator (forked per segment index).
    pub seed: u64,
    /// The scenario program, played in order.
    pub segments: Vec<Segment>,
}

impl Genome {
    /// Wraps a single hand-written scenario (used to seed the corpus
    /// with the 7 baseline adversaries).
    pub fn single(scenario: Scenario, events: u64, seed: u64) -> Self {
        Genome {
            seed,
            segments: vec![Segment { scenario, events }],
        }
    }

    /// Total events across all segments.
    pub fn total_events(&self) -> u64 {
        self.segments.iter().map(|s| s.events).sum()
    }

    /// Expresses the genome as a concrete trace. Pure function of the
    /// genome: segment `i` is generated with a seed derived from
    /// `(self.seed, i)`, and instruction counters are re-based onto the
    /// end of the previous segment.
    pub fn trace(&self) -> Vec<BranchRecord> {
        let mut out = Vec::with_capacity(self.total_events() as usize);
        let mut base = 0u64;
        for (i, seg) in self.segments.iter().enumerate() {
            let seg_seed =
                SplitMix64::new(self.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                    .next_u64();
            for mut r in seg.scenario.generate(seg.events, seg_seed) {
                r.instr += base;
                out.push(r);
            }
            base = out.last().map_or(base, |r| r.instr);
        }
        out
    }

    /// Short human label: segment names joined by `+`.
    pub fn describe(&self) -> String {
        self.segments
            .iter()
            .map(|s| s.scenario.name())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Produces a mutated child. One mutation operator is applied per
    /// call (occasionally two — fuzzing folklore says stacked mutations
    /// find different bugs than single ones).
    pub fn mutate(&self, rng: &mut Xoshiro256, monitor_period: u64) -> Genome {
        let mut child = self.clone();
        let stacked = rng.gen_bool(0.25);
        mutate_once(&mut child, rng, monitor_period);
        if stacked {
            mutate_once(&mut child, rng, monitor_period);
        }
        child
    }
}

fn mutate_once(g: &mut Genome, rng: &mut Xoshiro256, monitor: u64) {
    let seg = rng.gen_range(g.segments.len() as u64) as usize;
    match rng.gen_range(9) {
        // Tweak the selected segment's scenario parameters.
        0..=2 => {
            let s = &mut g.segments[seg];
            s.scenario = tweak_scenario(s.scenario, rng);
        }
        // Resize the segment (changes how long the controller marinates
        // in whatever state the segment drives it into).
        8 => {
            let s = &mut g.segments[seg];
            s.events = if rng.gen_bool(0.5) {
                (s.events * 2).min(MAX_SEGMENT_EVENTS)
            } else {
                (s.events / 2).max(MIN_SEGMENT_EVENTS)
            };
        }
        // Replace the segment's scenario family outright.
        3 => {
            let s = &mut g.segments[seg];
            s.scenario = random_scenario(rng, monitor);
        }
        // Input switch: split the segment in two, giving the new half a
        // fresh scenario.
        4 => {
            if g.segments.len() < MAX_SEGMENTS && g.segments[seg].events >= 2 * MIN_SEGMENT_EVENTS {
                let half = g.segments[seg].events / 2;
                g.segments[seg].events -= half;
                let scenario = random_scenario(rng, monitor);
                g.segments.insert(
                    seg + 1,
                    Segment {
                        scenario,
                        events: half,
                    },
                );
            } else {
                g.segments[seg].scenario = tweak_scenario(g.segments[seg].scenario, rng);
            }
        }
        // Remove a segment (its events fold into a neighbor, preserving
        // total length).
        5 if g.segments.len() > 1 => {
            let removed = g.segments.remove(seg);
            let neighbor = seg.min(g.segments.len() - 1);
            g.segments[neighbor].events += removed.events;
        }
        5 => {
            g.seed = g.seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1);
        }
        // Swap two segments (reorders the input switches).
        6 => {
            if g.segments.len() > 1 {
                let other = rng.gen_range(g.segments.len() as u64) as usize;
                g.segments.swap(seg, other);
            } else {
                g.segments[seg].scenario = tweak_scenario(g.segments[seg].scenario, rng);
            }
        }
        // Reseed: same program, different sample path.
        _ => {
            g.seed = g.seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1);
        }
    }
}

/// Nudges one numeric parameter of the scenario, multiplicatively (×2,
/// ÷2) or additively (±1), clamped to stay valid.
fn tweak_scenario(s: Scenario, rng: &mut Xoshiro256) -> Scenario {
    let nudge = |v: u64, rng: &mut Xoshiro256| -> u64 {
        match rng.gen_range(4) {
            0 => (v * 2).max(1),
            1 => (v / 2).max(1),
            2 => v + 1,
            _ => v.saturating_sub(1).max(1),
        }
    };
    let nudge32 = |v: u32, rng: &mut Xoshiro256| -> u32 { nudge(u64::from(v), rng) as u32 };
    match s {
        Scenario::PhaseFlip {
            branches,
            flip_after,
        } => {
            if rng.gen_bool(0.5) {
                Scenario::PhaseFlip {
                    branches: nudge32(branches, rng).min(64),
                    flip_after,
                }
            } else {
                Scenario::PhaseFlip {
                    branches,
                    flip_after: nudge(flip_after, rng),
                }
            }
        }
        Scenario::HysteresisStraddle { warmup, period } => {
            if rng.gen_bool(0.5) {
                Scenario::HysteresisStraddle {
                    warmup: nudge(warmup, rng),
                    period,
                }
            } else {
                Scenario::HysteresisStraddle {
                    warmup,
                    period: nudge(period, rng),
                }
            }
        }
        Scenario::RevisitAlias { period } => Scenario::RevisitAlias {
            period: nudge(period, rng),
        },
        Scenario::ThresholdOscillator { window } => Scenario::ThresholdOscillator {
            window: nudge(window, rng),
        },
        Scenario::BurstyHotSet { hot, burst } => {
            if rng.gen_bool(0.5) {
                Scenario::BurstyHotSet {
                    hot: nudge32(hot, rng).min(64),
                    burst,
                }
            } else {
                Scenario::BurstyHotSet {
                    hot,
                    burst: nudge(burst, rng),
                }
            }
        }
        Scenario::UniformRandom { branches } => Scenario::UniformRandom {
            branches: nudge32(branches, rng).min(64),
        },
        Scenario::CorrelatedGroups {
            groups,
            per_group,
            flip_every,
            churn,
        } => match rng.gen_range(4) {
            0 => Scenario::CorrelatedGroups {
                groups: nudge32(groups, rng).min(16),
                per_group,
                flip_every,
                churn,
            },
            1 => Scenario::CorrelatedGroups {
                groups,
                per_group: nudge32(per_group, rng).min(16),
                flip_every,
                churn,
            },
            2 => Scenario::CorrelatedGroups {
                groups,
                per_group,
                flip_every: nudge(flip_every, rng),
                churn,
            },
            _ => Scenario::CorrelatedGroups {
                groups,
                per_group,
                flip_every,
                // Churn may be zeroed (membership frozen) or re-enabled.
                churn: if churn == 0 {
                    nudge(flip_every, rng)
                } else if rng.gen_bool(0.2) {
                    0
                } else {
                    nudge(churn, rng)
                },
            },
        },
    }
}

/// Draws a fresh scenario with parameters aliased against the
/// controller's monitor period (the campaign's trick for hitting FSM
/// time constants).
pub fn random_scenario(rng: &mut Xoshiro256, monitor: u64) -> Scenario {
    let m = monitor.max(2);
    match rng.gen_range(7) {
        0 => Scenario::PhaseFlip {
            branches: 1 + rng.gen_range(8) as u32,
            flip_after: 1 + rng.gen_range(8 * m),
        },
        1 => Scenario::HysteresisStraddle {
            warmup: 1 + rng.gen_range(2 * m),
            period: 1 + rng.gen_range(8),
        },
        2 => Scenario::RevisitAlias {
            period: 1 + rng.gen_range(4 * m),
        },
        3 => Scenario::ThresholdOscillator {
            window: 1 + rng.gen_range(2 * m),
        },
        4 => Scenario::BurstyHotSet {
            hot: 1 + rng.gen_range(8) as u32,
            burst: 1 + rng.gen_range(8 * m),
        },
        5 => Scenario::UniformRandom {
            branches: 1 + rng.gen_range(16) as u32,
        },
        _ => Scenario::CorrelatedGroups {
            groups: 1 + rng.gen_range(4) as u32,
            per_group: 1 + rng.gen_range(4) as u32,
            flip_every: 1 + rng.gen_range(8 * m),
            churn: rng.gen_range(8 * m),
        },
    }
}

/// Serializes a scenario to the corpus JSON schema.
pub fn scenario_to_json(s: &Scenario) -> Json {
    let mut fields = vec![("family", Json::str(s.name()))];
    match *s {
        Scenario::PhaseFlip {
            branches,
            flip_after,
        } => {
            fields.push(("branches", Json::Int(u64::from(branches))));
            fields.push(("flip_after", Json::Int(flip_after)));
        }
        Scenario::HysteresisStraddle { warmup, period } => {
            fields.push(("warmup", Json::Int(warmup)));
            fields.push(("period", Json::Int(period)));
        }
        Scenario::RevisitAlias { period } => fields.push(("period", Json::Int(period))),
        Scenario::ThresholdOscillator { window } => fields.push(("window", Json::Int(window))),
        Scenario::BurstyHotSet { hot, burst } => {
            fields.push(("hot", Json::Int(u64::from(hot))));
            fields.push(("burst", Json::Int(burst)));
        }
        Scenario::UniformRandom { branches } => {
            fields.push(("branches", Json::Int(u64::from(branches))));
        }
        Scenario::CorrelatedGroups {
            groups,
            per_group,
            flip_every,
            churn,
        } => {
            fields.push(("groups", Json::Int(u64::from(groups))));
            fields.push(("per_group", Json::Int(u64::from(per_group))));
            fields.push(("flip_every", Json::Int(flip_every)));
            fields.push(("churn", Json::Int(churn)));
        }
    }
    Json::obj(fields)
}

/// Parses a scenario from the corpus JSON schema; inverse of
/// [`scenario_to_json`].
pub fn scenario_from_json(v: &Json) -> Result<Scenario, &'static str> {
    let field = |key: &'static str| -> Result<u64, &'static str> {
        v.get(key).and_then(Json::as_u64).ok_or(key)
    };
    let f32of = |key: &'static str| -> Result<u32, &'static str> {
        field(key).map(|x| x.min(u64::from(u32::MAX)) as u32)
    };
    match v.get("family").and_then(Json::as_str) {
        Some("phase_flip") => Ok(Scenario::PhaseFlip {
            branches: f32of("branches")?,
            flip_after: field("flip_after")?,
        }),
        Some("hysteresis_straddle") => Ok(Scenario::HysteresisStraddle {
            warmup: field("warmup")?,
            period: field("period")?,
        }),
        Some("revisit_alias") => Ok(Scenario::RevisitAlias {
            period: field("period")?,
        }),
        Some("threshold_oscillator") => Ok(Scenario::ThresholdOscillator {
            window: field("window")?,
        }),
        Some("bursty_hot_set") => Ok(Scenario::BurstyHotSet {
            hot: f32of("hot")?,
            burst: field("burst")?,
        }),
        Some("uniform_random") => Ok(Scenario::UniformRandom {
            branches: f32of("branches")?,
        }),
        Some("correlated_groups") => Ok(Scenario::CorrelatedGroups {
            groups: f32of("groups")?,
            per_group: f32of("per_group")?,
            flip_every: field("flip_every")?,
            churn: field("churn")?,
        }),
        _ => Err("family"),
    }
}

/// Serializes a genome to the corpus JSON schema.
pub fn genome_to_json(g: &Genome) -> Json {
    Json::obj([
        ("seed", Json::Int(g.seed)),
        (
            "segments",
            Json::Arr(
                g.segments
                    .iter()
                    .map(|seg| {
                        Json::obj([
                            ("scenario", scenario_to_json(&seg.scenario)),
                            ("events", Json::Int(seg.events)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses a genome from the corpus JSON schema; inverse of
/// [`genome_to_json`].
pub fn genome_from_json(v: &Json) -> Result<Genome, &'static str> {
    let seed = v.get("seed").and_then(Json::as_u64).ok_or("seed")?;
    let segs = v.get("segments").and_then(Json::as_arr).ok_or("segments")?;
    let mut segments = Vec::with_capacity(segs.len());
    for seg in segs {
        segments.push(Segment {
            scenario: scenario_from_json(seg.get("scenario").ok_or("scenario")?)?,
            events: seg.get("events").and_then(Json::as_u64).ok_or("events")?,
        });
    }
    if segments.is_empty() {
        return Err("segments");
    }
    Ok(Genome { seed, segments })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Genome {
        Genome {
            seed: 99,
            segments: vec![
                Segment {
                    scenario: Scenario::PhaseFlip {
                        branches: 2,
                        flip_after: 30,
                    },
                    events: 400,
                },
                Segment {
                    scenario: Scenario::CorrelatedGroups {
                        groups: 2,
                        per_group: 2,
                        flip_every: 40,
                        churn: 0,
                    },
                    events: 300,
                },
            ],
        }
    }

    #[test]
    fn trace_concatenates_with_strictly_increasing_instr() {
        let g = sample();
        let t = g.trace();
        assert_eq!(t.len() as u64, g.total_events());
        for w in t.windows(2) {
            assert!(w[0].instr < w[1].instr);
        }
        assert_eq!(g.trace(), t, "expression is deterministic");
    }

    #[test]
    fn mutation_is_deterministic_and_stays_valid() {
        let g = sample();
        let mut a = Xoshiro256::seed_from(5);
        let mut b = Xoshiro256::seed_from(5);
        for _ in 0..200 {
            let ca = g.mutate(&mut a, 10);
            let cb = g.mutate(&mut b, 10);
            assert_eq!(ca, cb);
            assert!(!ca.segments.is_empty());
            assert!(ca.segments.len() <= MAX_SEGMENTS);
            let _ = ca.trace(); // must not panic
        }
    }

    #[test]
    fn repeated_mutation_explores_without_exploding() {
        let mut rng = Xoshiro256::seed_from(7);
        let mut g = sample();
        let mut shapes = std::collections::BTreeSet::new();
        for _ in 0..300 {
            g = g.mutate(&mut rng, 10);
            shapes.insert(g.describe());
            assert!(g.segments.len() <= MAX_SEGMENTS);
        }
        assert!(shapes.len() > 10, "mutation explores program shapes");
    }

    #[test]
    fn genome_json_round_trips() {
        let g = sample();
        let j = genome_to_json(&g);
        let parsed = Json::parse(&j.to_string()).expect("serializer emits valid JSON");
        assert_eq!(genome_from_json(&parsed), Ok(g));
    }

    #[test]
    fn every_scenario_family_round_trips() {
        let mut rng = Xoshiro256::seed_from(3);
        for _ in 0..100 {
            let s = random_scenario(&mut rng, 10);
            let j = scenario_to_json(&s);
            let parsed = Json::parse(&j.to_string()).unwrap();
            assert_eq!(scenario_from_json(&parsed), Ok(s));
        }
    }
}
