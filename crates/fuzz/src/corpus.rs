//! Corpus entries and their on-disk JSON schema.
//!
//! The fuzzer keeps every *interesting* genome — one that contributed
//! new FSM-transition coverage or a new worst misspeculation rate —
//! together with what made it interesting and the analytic oracle's
//! verdict. Entries serialize to self-contained JSON files (`format: 1`,
//! sibling of the conformance counterexample schema, sharing its
//! controller-parameter encoding) so a scenario found in CI replays
//! anywhere from the artifact alone.

use crate::genome::{genome_from_json, genome_to_json, Genome};
use rsc_conformance::json::Json;
use rsc_control::analysis::coverage::TransitionCoverage;
use rsc_control::analysis::markov::{TOLERANCE_ABS, TOLERANCE_REL};
use std::path::Path;

/// The analytic oracle's verdict on one corpus entry.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyticCheck {
    /// The oracle was not consulted (`--analytic-check` off).
    Skipped,
    /// The scenario is outside the Markov model's supported subset;
    /// carries the model's stated reason.
    Unsupported(String),
    /// The model produced a prediction; `within_tolerance` says whether
    /// it agrees with simulation under the documented tolerance
    /// (|Δ| ≤ [`TOLERANCE_ABS`] or |Δ| ≤ [`TOLERANCE_REL`]·max).
    Checked {
        /// Model-predicted misspeculation rate.
        predicted: f64,
        /// Simulated misspeculation rate.
        simulated: f64,
        /// Agreement under the documented tolerance.
        within_tolerance: bool,
    },
}

impl AnalyticCheck {
    /// True when the oracle ran and disagreed with simulation.
    pub fn is_divergence(&self) -> bool {
        matches!(
            self,
            AnalyticCheck::Checked {
                within_tolerance: false,
                ..
            }
        )
    }
}

/// One interesting scenario, with the evidence that earned its keep.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// The replayable scenario program.
    pub genome: Genome,
    /// Why it was kept.
    pub reason: KeepReason,
    /// FSM-transition coverage of this entry alone.
    pub coverage: TransitionCoverage,
    /// Coverage points this entry added to the corpus when admitted.
    pub gained_points: u32,
    /// Events the expressed trace contains.
    pub events: u64,
    /// Misspeculations the controller suffered on the trace.
    pub misses: u64,
    /// `misses / events`.
    pub misspec_rate: f64,
    /// The analytic oracle's verdict.
    pub analytic: AnalyticCheck,
}

/// What admitted an entry to the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepReason {
    /// One of the seed scenarios (the hand-written adversary campaign).
    Baseline,
    /// Contributed unseen FSM-transition coverage.
    NewCoverage,
    /// Raised the worst observed misspeculation rate.
    WorseMisspeculation,
}

impl KeepReason {
    /// Stable artifact name.
    pub fn name(self) -> &'static str {
        match self {
            KeepReason::Baseline => "baseline",
            KeepReason::NewCoverage => "new_coverage",
            KeepReason::WorseMisspeculation => "worse_misspeculation",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        match s {
            "baseline" => Some(KeepReason::Baseline),
            "new_coverage" => Some(KeepReason::NewCoverage),
            "worse_misspeculation" => Some(KeepReason::WorseMisspeculation),
            _ => None,
        }
    }
}

/// Serializes an entry to the corpus JSON schema.
pub fn entry_to_json(e: &CorpusEntry) -> Json {
    let analytic = match &e.analytic {
        AnalyticCheck::Skipped => Json::obj([("kind", Json::str("skipped"))]),
        AnalyticCheck::Unsupported(reason) => Json::obj([
            ("kind", Json::str("unsupported")),
            ("reason", Json::str(reason.clone())),
        ]),
        AnalyticCheck::Checked {
            predicted,
            simulated,
            within_tolerance,
        } => Json::obj([
            ("kind", Json::str("checked")),
            ("predicted", Json::Num(*predicted)),
            ("simulated", Json::Num(*simulated)),
            ("within_tolerance", Json::Bool(*within_tolerance)),
            ("tolerance_abs", Json::Num(TOLERANCE_ABS)),
            ("tolerance_rel", Json::Num(TOLERANCE_REL)),
        ]),
    };
    Json::obj([
        ("format", Json::Int(1)),
        ("genome", genome_to_json(&e.genome)),
        ("reason", Json::str(e.reason.name())),
        ("coverage", Json::str(e.coverage.encode())),
        ("gained_points", Json::Int(u64::from(e.gained_points))),
        ("events", Json::Int(e.events)),
        ("misses", Json::Int(e.misses)),
        ("misspec_rate", Json::Num(e.misspec_rate)),
        ("analytic", analytic),
    ])
}

/// Parses an entry from the corpus JSON schema; inverse of
/// [`entry_to_json`].
pub fn entry_from_json(v: &Json) -> Result<CorpusEntry, &'static str> {
    if v.get("format").and_then(Json::as_u64) != Some(1) {
        return Err("format");
    }
    let analytic_v = v.get("analytic").ok_or("analytic")?;
    let analytic = match analytic_v.get("kind").and_then(Json::as_str) {
        Some("skipped") => AnalyticCheck::Skipped,
        Some("unsupported") => AnalyticCheck::Unsupported(
            analytic_v
                .get("reason")
                .and_then(Json::as_str)
                .ok_or("analytic.reason")?
                .to_string(),
        ),
        Some("checked") => AnalyticCheck::Checked {
            predicted: analytic_v
                .get("predicted")
                .and_then(Json::as_f64)
                .ok_or("analytic.predicted")?,
            simulated: analytic_v
                .get("simulated")
                .and_then(Json::as_f64)
                .ok_or("analytic.simulated")?,
            within_tolerance: analytic_v
                .get("within_tolerance")
                .and_then(Json::as_bool)
                .ok_or("analytic.within_tolerance")?,
        },
        _ => return Err("analytic.kind"),
    };
    Ok(CorpusEntry {
        genome: genome_from_json(v.get("genome").ok_or("genome")?)?,
        reason: v
            .get("reason")
            .and_then(Json::as_str)
            .and_then(KeepReason::from_name)
            .ok_or("reason")?,
        coverage: v
            .get("coverage")
            .and_then(Json::as_str)
            .and_then(TransitionCoverage::decode)
            .ok_or("coverage")?,
        gained_points: v
            .get("gained_points")
            .and_then(Json::as_u64)
            .and_then(|n| u32::try_from(n).ok())
            .ok_or("gained_points")?,
        events: v.get("events").and_then(Json::as_u64).ok_or("events")?,
        misses: v.get("misses").and_then(Json::as_u64).ok_or("misses")?,
        misspec_rate: v
            .get("misspec_rate")
            .and_then(Json::as_f64)
            .ok_or("misspec_rate")?,
        analytic,
    })
}

/// Writes one entry per `entry-NNN.json` file under `dir` (created if
/// missing).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_entries(dir: &Path, entries: &[CorpusEntry]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (i, e) in entries.iter().enumerate() {
        let path = dir.join(format!("entry-{i:03}.json"));
        std::fs::write(path, entry_to_json(e).to_string())?;
    }
    Ok(())
}

/// Reads every `entry-*.json` under `dir`, in filename order.
///
/// # Errors
///
/// Returns a static description of the first I/O or schema problem.
pub fn load_entries(dir: &Path) -> Result<Vec<CorpusEntry>, &'static str> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|_| "corpus dir unreadable")?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("entry-") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    let mut entries = Vec::with_capacity(paths.len());
    for p in paths {
        let text = std::fs::read_to_string(&p).map_err(|_| "entry unreadable")?;
        let v = Json::parse(&text).map_err(|_| "entry is not valid json")?;
        entries.push(entry_from_json(&v)?);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::Segment;
    use rsc_trace::Scenario;

    fn sample(reason: KeepReason, analytic: AnalyticCheck) -> CorpusEntry {
        CorpusEntry {
            genome: Genome {
                seed: 3,
                segments: vec![Segment {
                    scenario: Scenario::PhaseFlip {
                        branches: 2,
                        flip_after: 40,
                    },
                    events: 500,
                }],
            },
            reason,
            coverage: TransitionCoverage::default(),
            gained_points: 4,
            events: 500,
            misses: 17,
            misspec_rate: 17.0 / 500.0,
            analytic,
        }
    }

    #[test]
    fn entry_json_round_trips_for_every_verdict() {
        for (reason, analytic) in [
            (KeepReason::Baseline, AnalyticCheck::Skipped),
            (
                KeepReason::NewCoverage,
                AnalyticCheck::Unsupported("nonzero latency".to_string()),
            ),
            (
                KeepReason::WorseMisspeculation,
                AnalyticCheck::Checked {
                    predicted: 0.034,
                    simulated: 0.036,
                    within_tolerance: true,
                },
            ),
        ] {
            let e = sample(reason, analytic);
            let text = entry_to_json(&e).to_string();
            let back = entry_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn divergence_predicate_only_fires_on_failed_checks() {
        assert!(!AnalyticCheck::Skipped.is_divergence());
        assert!(!AnalyticCheck::Unsupported("x".into()).is_divergence());
        assert!(!AnalyticCheck::Checked {
            predicted: 0.0,
            simulated: 0.0,
            within_tolerance: true
        }
        .is_divergence());
        assert!(AnalyticCheck::Checked {
            predicted: 0.5,
            simulated: 0.0,
            within_tolerance: false
        }
        .is_divergence());
    }

    #[test]
    fn save_and_load_round_trip_preserves_order() {
        let dir = std::env::temp_dir().join("rsc_fuzz_corpus_test");
        std::fs::remove_dir_all(&dir).ok();
        let entries = vec![
            sample(KeepReason::Baseline, AnalyticCheck::Skipped),
            sample(
                KeepReason::NewCoverage,
                AnalyticCheck::Checked {
                    predicted: 0.1,
                    simulated: 0.09,
                    within_tolerance: true,
                },
            ),
        ];
        save_entries(&dir, &entries).unwrap();
        let back = load_entries(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(back, entries);
    }
}
