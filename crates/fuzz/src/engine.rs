//! The coverage-guided fuzzing loop and its report.
//!
//! The loop is classic greybox fuzzing transplanted onto the reactive
//! controller: the corpus seeds from the hand-written adversary campaign,
//! each iteration mutates a corpus genome, expresses it as a trace, runs
//! the real [`ReactiveController`] over it with full transition logging,
//! and admits the child if it covered unseen FSM-transition structure or
//! raised the worst observed misspeculation rate. Every admitted entry is
//! cross-examined by the analytic Markov oracle
//! ([`rsc_control::analysis::markov`]): the model either explains the
//! scenario (prediction within tolerance), declares it out of scope with
//! a reason, or *diverges* — and a divergence is a first-class result
//! (model bug or controller bug), never a silent pass.
//!
//! Everything is a pure function of [`FuzzConfig`]: same config, same
//! report, on any machine.

use crate::corpus::{AnalyticCheck, CorpusEntry, KeepReason};
use crate::genome::Genome;
use rsc_conformance::campaign::{param_matrix, scenarios_for};
use rsc_conformance::shrink::{shrink_by, DEFAULT_BUDGET};
use rsc_control::analysis::coverage::TransitionCoverage;
use rsc_control::analysis::markov::{predict, within_tolerance, ModelOutcome};
use rsc_control::translog::TransitionLogPolicy;
use rsc_control::{ControllerParams, ReactiveController};
use rsc_trace::rng::Xoshiro256;
use rsc_trace::BranchRecord;

/// Fuzzing campaign configuration. The whole report is a deterministic
/// function of this value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzConfig {
    /// Mutation iterations to run after seeding the corpus.
    pub iters: u64,
    /// Master seed for mutation choices and baseline genome seeds.
    pub seed: u64,
    /// Events per baseline scenario (mutation may grow/shrink children).
    pub events: u64,
    /// Controller parameters under test.
    pub params: ControllerParams,
    /// Minimize the worst-case trace with the ddmin shrinker.
    pub minimize: bool,
    /// Run the analytic Markov oracle on every admitted entry.
    pub analytic_check: bool,
}

impl FuzzConfig {
    /// The defaults behind `repro fuzz`: 200 iterations, seed 42, the
    /// campaign's "tiny" parameter set, oracle on, minimization off.
    pub fn new() -> Self {
        FuzzConfig {
            iters: 200,
            seed: 42,
            events: 3_000,
            params: Self::default_params(),
            minimize: false,
            analytic_check: true,
        }
    }

    /// The campaign's "tiny" parameter set — FSM time constants small
    /// enough that a few-thousand-event trace exercises every arc, and
    /// inside the analytic model's supported subset.
    pub fn default_params() -> ControllerParams {
        param_matrix()
            .into_iter()
            .find(|(name, _)| *name == "tiny")
            .expect("campaign param matrix always contains \"tiny\"")
            .1
    }
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig::new()
    }
}

/// The worst misspeculation scenario the campaign observed.
#[derive(Debug, Clone, PartialEq)]
pub struct WorstCase {
    /// Index of the corpus entry that produced it.
    pub entry: usize,
    /// Misspeculation rate of the full trace.
    pub misspec_rate: f64,
    /// Misspeculations on the full trace.
    pub misses: u64,
    /// Events in the full trace.
    pub events: u64,
    /// ddmin-minimized trace still achieving `misspec_rate`, when
    /// minimization was requested.
    pub minimized: Option<Vec<BranchRecord>>,
}

/// Everything a fuzzing campaign produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzReport {
    /// The configuration that (deterministically) produced this report.
    pub config: FuzzConfig,
    /// Coverage points of the 7 hand-written adversary scenarios merged.
    pub baseline_points: u32,
    /// Coverage points of the whole corpus at the end of the campaign.
    pub fuzz_points: u32,
    /// Coverage map of the whole corpus.
    pub coverage: TransitionCoverage,
    /// Every admitted scenario (baseline entries first, in campaign
    /// order; fuzz finds after, in discovery order).
    pub corpus: Vec<CorpusEntry>,
    /// Indices of corpus entries whose analytic check diverged.
    pub divergences: Vec<usize>,
    /// The worst misspeculation scenario observed.
    pub worst: Option<WorstCase>,
}

impl FuzzReport {
    /// True when fuzzing strictly beat the hand-written campaign's
    /// transition coverage — the acceptance gate for the fuzzer itself.
    pub fn beat_baseline(&self) -> bool {
        self.fuzz_points > self.baseline_points
    }
}

/// One execution of the controller over a trace.
struct RunOutcome {
    coverage: TransitionCoverage,
    events: u64,
    misses: u64,
}

impl RunOutcome {
    fn misspec_rate(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.misses as f64 / self.events as f64
        }
    }
}

/// Runs the real controller over `trace` with full transition logging.
fn run_trace(params: &ControllerParams, trace: &[BranchRecord]) -> RunOutcome {
    let mut c = ReactiveController::builder(*params)
        .log_policy(TransitionLogPolicy::Full)
        .build()
        .expect("fuzz params must validate");
    for r in trace {
        c.observe(r);
    }
    let stats = c.stats();
    RunOutcome {
        coverage: TransitionCoverage::from_log(c.transition_log()),
        events: stats.events,
        misses: stats.incorrect,
    }
}

/// Simulated misspeculation count for a candidate trace (the shrinker's
/// failure predicate).
fn misses_on(params: &ControllerParams, trace: &[BranchRecord]) -> u64 {
    run_trace(params, trace).misses
}

/// Consults the Markov oracle about one trace.
fn analytic_verdict(
    params: &ControllerParams,
    trace: &[BranchRecord],
    simulated: f64,
) -> AnalyticCheck {
    match predict(params, trace) {
        ModelOutcome::Supported(pred) => AnalyticCheck::Checked {
            predicted: pred.misspec_rate,
            simulated,
            within_tolerance: within_tolerance(pred.misspec_rate, simulated),
        },
        ModelOutcome::Unsupported(reason) => AnalyticCheck::Unsupported(reason.to_string()),
    }
}

/// Runs a full fuzzing campaign. Deterministic in `config`.
pub fn fuzz(config: &FuzzConfig) -> FuzzReport {
    let params = config.params;
    let mut rng = Xoshiro256::seed_from(config.seed);

    // Seed the corpus with the hand-written adversary campaign; its
    // merged coverage is the baseline the fuzzer must beat.
    let mut corpus: Vec<CorpusEntry> = Vec::new();
    let mut coverage = TransitionCoverage::default();
    for (i, scenario) in scenarios_for(&params).into_iter().enumerate() {
        let genome = Genome::single(scenario, config.events, config.seed ^ ((i as u64) << 32));
        let out = run_trace(&params, &genome.trace());
        let gained = coverage.merge(&out.coverage);
        let rate = out.misspec_rate();
        let analytic = if config.analytic_check {
            analytic_verdict(&params, &genome.trace(), rate)
        } else {
            AnalyticCheck::Skipped
        };
        corpus.push(CorpusEntry {
            genome,
            reason: KeepReason::Baseline,
            coverage: out.coverage,
            gained_points: gained,
            events: out.events,
            misses: out.misses,
            misspec_rate: rate,
            analytic,
        });
    }
    let baseline_points = coverage.points();
    let mut worst_idx = corpus
        .iter()
        .enumerate()
        .max_by(|a, b| {
            a.1.misspec_rate
                .partial_cmp(&b.1.misspec_rate)
                .expect("rates are finite")
        })
        .map(|(i, _)| i);

    // The greybox loop: mutate a corpus member, run, keep if interesting.
    for _ in 0..config.iters {
        let parent = &corpus[rng.gen_range(corpus.len() as u64) as usize];
        let child = parent.genome.mutate(&mut rng, params.monitor_period);
        let trace = child.trace();
        let out = run_trace(&params, &trace);
        let rate = out.misspec_rate();

        let gained = out.coverage.new_points(&coverage);
        let worst_rate = worst_idx.map_or(0.0, |i| corpus[i].misspec_rate);
        let reason = if gained > 0 {
            KeepReason::NewCoverage
        } else if rate > worst_rate {
            KeepReason::WorseMisspeculation
        } else {
            continue;
        };

        coverage.merge(&out.coverage);
        let analytic = if config.analytic_check {
            analytic_verdict(&params, &trace, rate)
        } else {
            AnalyticCheck::Skipped
        };
        corpus.push(CorpusEntry {
            genome: child,
            reason,
            coverage: out.coverage,
            gained_points: gained,
            events: out.events,
            misses: out.misses,
            misspec_rate: rate,
            analytic,
        });
        if rate > worst_rate {
            worst_idx = Some(corpus.len() - 1);
        }
    }

    let divergences: Vec<usize> = corpus
        .iter()
        .enumerate()
        .filter(|(_, e)| e.analytic.is_divergence())
        .map(|(i, _)| i)
        .collect();

    // Worst-case minimization: the smallest trace that still drives the
    // controller to at least the observed misspeculation rate (with at
    // least one real miss, so the witness shows the mechanism).
    let worst = worst_idx.map(|entry| {
        let e = &corpus[entry];
        let minimized = if config.minimize && e.misses > 0 {
            let target = e.misspec_rate;
            let trace = e.genome.trace();
            let (small, _) = shrink_by(
                &trace,
                DEFAULT_BUDGET,
                |cand| {
                    let misses = misses_on(&params, cand);
                    let rate = misses as f64 / cand.len() as f64;
                    (misses > 0 && rate >= target).then_some(misses)
                },
                |_| trace.len(),
            );
            Some(small)
        } else {
            None
        };
        WorstCase {
            entry,
            misspec_rate: e.misspec_rate,
            misses: e.misses,
            events: e.events,
            minimized,
        }
    });

    FuzzReport {
        config: *config,
        baseline_points,
        fuzz_points: coverage.points(),
        coverage,
        corpus,
        divergences,
        worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> FuzzConfig {
        FuzzConfig {
            iters: 30,
            events: 1_000,
            ..FuzzConfig::new()
        }
    }

    #[test]
    fn fuzzing_is_deterministic() {
        let cfg = quick();
        let a = fuzz(&cfg);
        let b = fuzz(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn corpus_seeds_with_the_seven_baseline_scenarios() {
        let report = fuzz(&quick());
        let baseline: Vec<_> = report
            .corpus
            .iter()
            .filter(|e| e.reason == KeepReason::Baseline)
            .collect();
        assert_eq!(baseline.len(), 7);
        assert!(report.baseline_points > 0);
        assert!(report.fuzz_points >= report.baseline_points);
    }

    #[test]
    fn every_kept_entry_carries_an_analytic_verdict() {
        let report = fuzz(&quick());
        for e in &report.corpus {
            assert_ne!(
                e.analytic,
                AnalyticCheck::Skipped,
                "oracle on: every entry must be explained or flagged"
            );
        }
        // The tiny parameter set is inside the model's supported subset.
        assert!(report
            .corpus
            .iter()
            .all(|e| matches!(e.analytic, AnalyticCheck::Checked { .. })));
    }

    #[test]
    fn skipping_the_oracle_marks_entries_unchecked() {
        let cfg = FuzzConfig {
            analytic_check: false,
            iters: 5,
            events: 500,
            ..FuzzConfig::new()
        };
        let report = fuzz(&cfg);
        assert!(report
            .corpus
            .iter()
            .all(|e| e.analytic == AnalyticCheck::Skipped));
        assert!(report.divergences.is_empty());
    }

    #[test]
    fn minimization_produces_a_smaller_trace_with_the_same_rate_floor() {
        let cfg = FuzzConfig {
            minimize: true,
            iters: 20,
            events: 1_000,
            ..FuzzConfig::new()
        };
        let report = fuzz(&cfg);
        let worst = report.worst.expect("campaign observed misspeculation");
        let small = worst.minimized.expect("worst case had misses");
        assert!(small.len() as u64 <= worst.events);
        let misses = misses_on(&cfg.params, &small);
        assert!(misses > 0);
        assert!(misses as f64 / small.len() as f64 >= worst.misspec_rate);
    }
}
