//! # rsc-fuzz — coverage-guided scenario fuzzing with an analytic oracle
//!
//! The hand-written adversary campaign in `rsc-conformance` asks a fixed
//! set of seven questions. This crate asks *generated* ones: a greybox
//! fuzzer mutates trace-generator parameters — phase lengths, flip
//! correlations, hot-set churn, input switches, correlated-group
//! membership — guided by coverage of the controller's FSM-transition
//! space and by the observed misspeculation rate.
//!
//! Three pieces:
//!
//! * [`genome`] — the mutable scenario representation: a seeded sequence
//!   of adversary-generator segments, each segment boundary an input
//!   switch. Mutation edits generator parameters and program structure,
//!   never raw events, so every find replays from a few integers.
//! * [`engine`] — the fuzzing loop. Coverage is
//!   [`rsc_control::analysis::coverage::TransitionCoverage`] (transition
//!   kinds, per-branch kind pairs, hit-count buckets); a child joins the
//!   corpus when it adds coverage points or a new worst misspeculation
//!   rate. Worst cases minimize with `rsc-conformance`'s ddmin shrinker.
//! * [`corpus`] — admitted entries plus the verdict of the analytic
//!   Markov oracle ([`rsc_control::analysis::markov`]). Every kept
//!   scenario ships with an analytic explanation, an explicit
//!   out-of-model reason, or a flagged divergence — never a silent pass.
//!
//! ## Quick start
//!
//! ```
//! use rsc_fuzz::{fuzz, FuzzConfig};
//!
//! let report = fuzz(&FuzzConfig {
//!     iters: 30,
//!     events: 1_000,
//!     ..FuzzConfig::new()
//! });
//! // Seeded by the 7 hand-written adversaries, then grown.
//! assert!(report.corpus.len() >= 7);
//! assert!(report.fuzz_points >= report.baseline_points);
//! // Same config, same report, on any machine.
//! assert_eq!(fuzz(&report.config), report);
//! ```

#![warn(missing_docs)]

pub mod corpus;
pub mod engine;
pub mod genome;

pub use corpus::{AnalyticCheck, CorpusEntry, KeepReason};
pub use engine::{fuzz, FuzzConfig, FuzzReport, WorstCase};
pub use genome::{Genome, Segment};
